/**
 * @file
 * End-to-end smoke test for the differential bounds oracle and the
 * metadata fault-injection campaign, run as the `infat_oracle_smoke`
 * ctest.
 *
 * Three layers, mirroring docs/TESTING.md:
 *
 *  1. The generated Juliet-style suite runs with the oracle attached
 *     under both allocators; the oracle must agree with the IFP
 *     machinery on every checked access (zero false negatives, zero
 *     false positives) while the suite itself stays fully correct.
 *  2. Two Olden-style workloads run with the oracle attached; real
 *     pointer-heavy programs must produce zero disagreements too.
 *  3. The fault campaign flips >=1000 seeded bits across pointers,
 *     metadata records, global-table rows, and layout entries; every
 *     undetected corruption must land in a named explanation bucket.
 *
 * All results are exported through the stat registry as JSON
 * (--stats-json=PATH, default under TMPDIR), re-parsed, and the groups
 * the tooling relies on are asserted present. Exits non-zero with a
 * self-describing message on any violation.
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "juliet/juliet.hh"
#include "oracle/fault.hh"
#include "oracle/oracle.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "workloads/harness.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    } else {
        std::fprintf(stderr, "ok:   %s\n", what.c_str());
    }
}

void
checkSuite(const juliet::OracleSuiteResult &suite, const char *label)
{
    check(suite.total > 0 && suite.badMissed == 0,
          std::string(label) + ": every bad case trapped");
    check(suite.suiteFalsePositives == 0,
          std::string(label) + ": every good case passed");
    check(suite.checks > 0,
          std::string(label) + ": oracle diffed at least one access");
    check(suite.falseNegatives == 0,
          std::string(label) + ": zero oracle false negatives");
    check(suite.falsePositives == 0,
          std::string(label) + ": zero oracle false positives");
    check(suite.temporalFalsePositives == 0,
          std::string(label) + ": zero temporal false positives");
    check(suite.temporalFalseNegativesUnexplained == 0,
          std::string(label) +
              ": temporal misses limited to documented buckets");
    if (suite.falseNegatives + suite.falsePositives > 0) {
        for (const auto &[cell, counts] : suite.cells) {
            if (counts.falseNegatives + counts.falsePositives == 0)
                continue;
            std::fprintf(stderr, "  cell %s: fn=%llu fp=%llu\n",
                         cell.c_str(),
                         static_cast<unsigned long long>(
                             counts.falseNegatives),
                         static_cast<unsigned long long>(
                             counts.falsePositives));
        }
    }
}

void
runWorkloadWithOracle(const char *name, Config config,
                      StatGroup &group)
{
    oracle::ShadowOracle shadow;
    Observability obs;
    obs.oracle = &shadow;
    RunResult result = runWorkload(name, config, obs);

    std::string label = std::string("workload ") + name;
    check(result.checksum != 0, label + ": produced a checksum");
    check(shadow.checks() > 0, label + ": oracle diffed accesses");
    check(shadow.falseNegatives() == 0,
          label + ": zero oracle false negatives");
    check(shadow.falsePositives() == 0,
          label + ": zero oracle false positives");
    // The verdict taxonomy is exhaustive: every check is abstained,
    // agreement, or disagreement.
    check(shadow.abstained() + shadow.truePositives() +
                  shadow.trueNegatives() + shadow.falseNegatives() +
                  shadow.falsePositives() ==
              shadow.checks(),
          label + ": verdict classes sum to checks");

    std::string prefix = std::string(name) + "_";
    group.counter(prefix + "checks").set(shadow.checks());
    group.counter(prefix + "abstained").set(shadow.abstained());
    group.counter(prefix + "true_positives")
        .set(shadow.truePositives());
    group.counter(prefix + "true_negatives")
        .set(shadow.trueNegatives());
    group.counter(prefix + "false_negatives")
        .set(shadow.falseNegatives());
    group.counter(prefix + "false_positives")
        .set(shadow.falsePositives());
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string dir =
        std::getenv("TMPDIR") ? std::getenv("TMPDIR") : ".";
    std::string stats_path = dir + "/infat_oracle_smoke.json";
    bool keep_stats = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
            stats_path = argv[i] + 13;
            keep_stats = true;
        }
    }

    StatGroup wrapped_group("juliet_oracle_wrapped");
    StatGroup subheap_group("juliet_oracle_subheap");
    StatGroup workload_group("workload_oracle");
    StatGroup fault_group("fault_campaign");

    // --- 1. Juliet suite, both allocators ---
    juliet::OracleSuiteResult wrapped =
        juliet::runSuiteWithOracle(AllocatorKind::Wrapped);
    wrapped.addToStats(wrapped_group);
    checkSuite(wrapped, "juliet/wrapped");

    juliet::OracleSuiteResult subheap =
        juliet::runSuiteWithOracle(AllocatorKind::Subheap);
    subheap.addToStats(subheap_group);
    checkSuite(subheap, "juliet/subheap");

    // --- 2. Olden-style workloads ---
    runWorkloadWithOracle("treeadd", Config::Subheap, workload_group);
    runWorkloadWithOracle("perimeter", Config::Wrapped, workload_group);

    // --- 3. Fault-injection campaign ---
    oracle::FaultCampaignConfig fault_config;
    fault_config.trials = 1200;
    fault_config.jobs = 2;
    oracle::FaultCampaignResult fault =
        oracle::runFaultCampaign(fault_config);
    fault.addToStats(fault_group);
    check(fault.trials == fault_config.trials,
          "fault campaign ran every trial");
    check(fault.detected > 0, "fault campaign detected corruptions");
    check(fault.perTarget.size() == oracle::kNumFaultTargets,
          "fault campaign covered every target");
    check(fault.unexplained == 0,
          "every undetected corruption is explained");
    for (const std::string &detail : fault.unexplainedDetails)
        std::fprintf(stderr, "  unexplained: %s\n", detail.c_str());

    // --- stats-json export and re-parse ---
    StatRegistry registry;
    registry.add(&wrapped_group);
    registry.add(&subheap_group);
    registry.add(&workload_group);
    registry.add(&fault_group);
    registry.snapshot().writeFile(stats_path);

    std::string err;
    std::optional<JsonValue> doc = jsonParseFile(stats_path, &err);
    check(doc.has_value(), "stats JSON parses");
    if (doc) {
        const JsonValue *groups = doc->find("groups");
        for (const char *name :
             {"juliet_oracle_wrapped", "juliet_oracle_subheap",
              "workload_oracle", "fault_campaign"}) {
            check(groups && groups->find(name) != nullptr,
                  std::string("stats has group ") + name);
        }
        const JsonValue *fc =
            groups ? groups->find("fault_campaign") : nullptr;
        const JsonValue *scalars = fc ? fc->find("scalars") : nullptr;
        const JsonValue *trials =
            scalars ? scalars->find("trials") : nullptr;
        check(trials && trials->asUint() == fault_config.trials,
              "fault_campaign.trials exported correctly");
    } else {
        std::fprintf(stderr, "  parse error: %s\n", err.c_str());
    }

    if (!keep_stats)
        std::remove(stats_path.c_str());

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all checks passed\n");
    return 0;
}
