/**
 * @file
 * Trace-validation gate, run as the `infat_trace_check` ctest.
 *
 * Runs a small workload with the Chrome trace sink attached (and a
 * second pass for the guest profiler's counter-track export), then
 * re-parses each emitted file with support/json.hh and checks the
 * well-formedness properties Perfetto and chrome://tracing rely on:
 *
 *  - every event carries name/cat/ph/ts/pid/tid;
 *  - the phase is one of the phases we emit (B, E, i, X, C, M) and
 *    'X' events carry a duration;
 *  - the category is a known TraceCategory name;
 *  - timestamps are monotonically nondecreasing per tid (the cycle
 *    clock never goes backwards within a track);
 *  - 'B'/'E' duration pairs are balanced per tid: depth never goes
 *    negative and every begin is closed by the end of the file.
 *
 * Exits non-zero with a message per violation.
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/profile.hh"
#include "support/trace.hh"
#include "workloads/harness.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    } else {
        std::fprintf(stderr, "ok:   %s\n", what.c_str());
    }
}

/** Validate one Chrome trace-event file; see file comment for rules. */
void
validateTraceFile(const std::string &path, const std::string &label)
{
    std::string err;
    std::optional<JsonValue> doc = jsonParseFile(path, &err);
    check(doc.has_value(), label + ": trace JSON parses");
    if (!doc) {
        std::fprintf(stderr, "  parse error: %s\n", err.c_str());
        return;
    }

    const JsonValue *events = doc->find("traceEvents");
    check(events && events->isArray(),
          label + ": has traceEvents array");
    if (!events || !events->isArray())
        return;
    check(!events->arr.empty(), label + ": traceEvents non-empty");

    const std::set<std::string> known_phases = {"B", "E", "i", "X",
                                                "C", "M"};
    std::set<std::string> known_cats;
    for (unsigned i = 0;
         i < static_cast<unsigned>(TraceCategory::NumCategories); ++i)
        known_cats.insert(toString(static_cast<TraceCategory>(i)));

    bool fields_ok = true, phase_ok = true, cat_ok = true;
    bool ts_ok = true, dur_ok = true, balance_ok = true;
    std::map<uint64_t, uint64_t> last_ts; // tid -> last seen ts
    std::map<uint64_t, int64_t> depth;    // tid -> open 'B' count
    for (const JsonValue &ev : events->arr) {
        const JsonValue *name = ev.find("name");
        const JsonValue *cat = ev.find("cat");
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        const JsonValue *tid = ev.find("tid");
        if (!name || !cat || !ph || !ts || !ev.find("pid") || !tid) {
            fields_ok = false;
            continue;
        }
        if (!known_phases.count(ph->str))
            phase_ok = false;
        if (!known_cats.count(cat->str))
            cat_ok = false;
        uint64_t t = tid->asUint();
        uint64_t now = ts->asUint();
        auto it = last_ts.find(t);
        if (it != last_ts.end() && now < it->second)
            ts_ok = false;
        last_ts[t] = now;
        if (ph->str == "X" && !ev.find("dur"))
            dur_ok = false;
        if (ph->str == "B")
            ++depth[t];
        else if (ph->str == "E" && --depth[t] < 0)
            balance_ok = false;
    }
    for (const auto &[t, d] : depth)
        if (d != 0)
            balance_ok = false;

    check(fields_ok, label + ": every event has name/cat/ph/ts/pid/tid");
    check(phase_ok, label + ": every phase is known");
    check(cat_ok, label + ": every category is known");
    check(ts_ok, label + ": timestamps nondecreasing per tid");
    check(dur_ok, label + ": every 'X' event has a duration");
    check(balance_ok, label + ": 'B'/'E' pairs balanced per tid");
}

} // namespace

int
main()
{
    setQuiet(true);
    std::string dir =
        std::getenv("TMPDIR") ? std::getenv("TMPDIR") : ".";
    std::string trace_path = dir + "/infat_trace_check.trace.json";
    std::string counters_path = dir + "/infat_trace_check.prof.json";

    // Pass 1: the machine's own trace sink (all categories except the
    // per-instruction exec firehose).
    {
        Observability obs;
        ChromeTraceSink sink(trace_path);
        obs.traceSink = &sink;
        obs.traceCategories =
            traceMaskAll & ~traceBit(TraceCategory::Exec);
        RunResult result =
            runWorkload("anagram", Config::Subheap, obs);
        sink.close();
        check(result.instructions > 0, "workload ran");
    }
    validateTraceFile(trace_path, "machine trace");

    // Pass 2: the guest profiler's Perfetto counter tracks.
    {
        GuestProfiler profiler;
        profiler.setSampleInterval(256);
        Observability obs;
        obs.profiler = &profiler;
        RunResult result =
            runWorkload("anagram", Config::Subheap, obs);
        check(result.instructions > 0, "profiled workload ran");
        check(profiler.samples() > 0, "profiler collected samples");
        profiler.writeChromeTrace(counters_path);
    }
    validateTraceFile(counters_path, "profiler counters");

    std::remove(trace_path.c_str());
    std::remove(counters_path.c_str());

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all checks passed\n");
    return 0;
}
