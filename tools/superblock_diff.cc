/**
 * @file
 * Differential gate for the superblock interpreter: every workload, in
 * both an uninstrumented and an instrumented configuration, must
 * produce bit-identical simulated results (checksum, instruction and
 * cycle counts, and the full stat snapshot) under the superblock
 * engine and under the general interpreter path. The only stat group
 * allowed to differ is "vm.superblock", which describes the host
 * engine itself.
 *
 * A third pass per pair runs the superblock engine with the guest
 * profiler attached and forensics enabled: the profiler must be purely
 * host-side (identical simulated results), and — unlike the tracer and
 * oracle — it must NOT have knocked the run off the superblock engine.
 *
 * Exits non-zero and prints every divergence when the engines
 * disagree. Registered as a ctest (infat_superblock_diff).
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "support/profile.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
reportMismatch(const std::string &where, const std::string &what,
         const std::string &general_val, const std::string &sb_val)
{
    ++failures;
    std::fprintf(stderr, "MISMATCH %s: %s general=%s superblock=%s\n",
                 where.c_str(), what.c_str(), general_val.c_str(),
                 sb_val.c_str());
}

void
compareU64(const std::string &where, const std::string &what,
           uint64_t general_val, uint64_t sb_val)
{
    if (general_val != sb_val)
        reportMismatch(where, what, std::to_string(general_val),
                 std::to_string(sb_val));
}

/** Compare snapshots both ways, ignoring the host-engine group. */
void
compareStats(const std::string &where, const StatSnapshot &general_s,
             const StatSnapshot &sb_s)
{
    for (int dir = 0; dir < 2; ++dir) {
        const StatSnapshot &a = dir == 0 ? general_s : sb_s;
        const StatSnapshot &b = dir == 0 ? sb_s : general_s;
        for (const StatSnapshot::Group &ga : a.groups) {
            // Both groups describe the host engine, not the
            // simulation: vm.superblock (predecode shape, check
            // execution) and vm.tier (dispatch tier / JIT activity).
            if (ga.name == "vm.superblock" || ga.name == "vm.tier")
                continue;
            const StatSnapshot::Group *gb = b.findGroup(ga.name);
            if (!gb) {
                reportMismatch(where, "group " + ga.name,
                         dir == 0 ? "present" : "absent",
                         dir == 0 ? "absent" : "present");
                continue;
            }
            if (dir != 0)
                continue; // contents compared on the first pass
            for (const auto &[name, v] : ga.scalars)
                compareU64(where, ga.name + "." + name, v,
                           gb->scalars.count(name)
                               ? gb->scalars.at(name)
                               : ~0ULL);
            for (const auto &[name, v] : ga.formulas) {
                auto it = gb->formulas.find(name);
                if (it == gb->formulas.end() || it->second != v)
                    reportMismatch(where, ga.name + "." + name,
                             std::to_string(v),
                             it == gb->formulas.end()
                                 ? "absent"
                                 : std::to_string(it->second));
            }
            for (const auto &[name, h] : ga.histograms) {
                auto it = gb->histograms.find(name);
                if (it == gb->histograms.end()) {
                    reportMismatch(where, ga.name + "." + name, "present",
                             "absent");
                    continue;
                }
                compareU64(where, ga.name + "." + name + ".count",
                           h.count, it->second.count);
                compareU64(where, ga.name + "." + name + ".sum",
                           h.sum, it->second.sum);
            }
            for (const auto &[name, d] : ga.distributions) {
                auto it = gb->distributions.find(name);
                if (it == gb->distributions.end()) {
                    reportMismatch(where, ga.name + "." + name, "present",
                             "absent");
                    continue;
                }
                compareU64(where, ga.name + "." + name + ".count",
                           d.count, it->second.count);
                compareU64(where, ga.name + "." + name + ".sum",
                           d.sum, it->second.sum);
                compareU64(where, ga.name + "." + name + ".min",
                           d.min, it->second.min);
                compareU64(where, ga.name + "." + name + ".max",
                           d.max, it->second.max);
            }
        }
    }
}

} // namespace

int
main()
{
    const Config configs[] = {Config::Baseline, Config::Subheap};

    int runs = 0;
    for (const Workload &workload : all()) {
        for (Config config : configs) {
            std::string where = std::string(workload.name) + "/" +
                                toString(config);

            EngineTuning general;
            general.superblocks = false;
            setEngineTuning(general);
            RunResult ref = runWorkload(workload, config);

            setEngineTuning(EngineTuning{}); // superblocks + all opts
            RunResult sb = runWorkload(workload, config);

            compareU64(where, "checksum", ref.checksum, sb.checksum);
            compareU64(where, "instructions", ref.instructions,
                       sb.instructions);
            compareU64(where, "cycles", ref.cycles, sb.cycles);
            compareStats(where, ref.stats, sb.stats);

            // The superblock pass really must have used the engine
            // (otherwise this gate compares general against itself).
            if (sb.stats.scalar("vm.superblock", "functions") == 0) {
                ++failures;
                std::fprintf(stderr,
                             "MISMATCH %s: superblock engine was not "
                             "active (0 functions predecoded)\n",
                             where.c_str());
            }

            // Third pass: superblock engine with the guest profiler
            // attached (sampling on) and forensics records enabled.
            // Both are host-side only, so simulated results must stay
            // bit-identical with the reference...
            GuestProfiler profiler;
            profiler.setSampleInterval(256);
            Observability prof_obs;
            prof_obs.profiler = &profiler;
            prof_obs.forensics = true;
            RunResult prof =
                runWorkload(workload, config, prof_obs);
            std::string pwhere = where + "/profiled";
            compareU64(pwhere, "checksum", ref.checksum,
                       prof.checksum);
            compareU64(pwhere, "instructions", ref.instructions,
                       prof.instructions);
            compareU64(pwhere, "cycles", ref.cycles, prof.cycles);
            compareStats(pwhere, ref.stats, prof.stats);

            // ...and, unlike tracer/oracle attachment, the profiler
            // must not have disabled the superblock engine.
            if (prof.stats.scalar("vm.superblock", "functions") == 0) {
                ++failures;
                std::fprintf(stderr,
                             "MISMATCH %s: superblock engine was not "
                             "active with profiler attached\n",
                             pwhere.c_str());
            }
            ++runs;
        }
    }

    if (failures != 0) {
        std::fprintf(stderr,
                     "superblock_diff: %d divergence(s) across %d "
                     "run pairs\n",
                     failures, runs);
        return 1;
    }
    std::printf("superblock_diff: %d run pairs bit-identical "
                "(all workloads x {baseline, subheap})\n",
                runs);
    return 0;
}
