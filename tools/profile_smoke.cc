/**
 * @file
 * End-to-end smoke test for the guest profiler, run as the
 * `infat_profile_smoke` ctest.
 *
 * Runs one workload with a profiler attached and a --stats-json-style
 * export, re-parses the document, and checks the "profile" section
 * contract the tooling (and the future JIT tier) relies on:
 *
 *  - the section is present and lists functions, hot blocks, and
 *    check sites;
 *  - the top-site/block cycle totals reconcile with the machine's
 *    simulated counters: summed block self-cycles never exceed
 *    vm.cycles, summed check-site executions equal
 *    vm.implicit_checks exactly, summed per-function bounds
 *    spill/reload cycles equal vm.cycles_bnd_ldst exactly, and
 *    summed call-site calls equal vm.calls exactly.
 *
 * Exits non-zero with a message per violation.
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/profile.hh"
#include "workloads/harness.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::fprintf(stderr, "ok:   %s\n", what);
    }
}

uint64_t
scalarOf(const JsonValue &stats, const char *group, const char *name)
{
    const JsonValue *groups = stats.find("groups");
    const JsonValue *g = groups ? groups->find(group) : nullptr;
    const JsonValue *scalars = g ? g->find("scalars") : nullptr;
    const JsonValue *v = scalars ? scalars->find(name) : nullptr;
    return v ? v->asUint() : ~0ULL;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::string dir =
        std::getenv("TMPDIR") ? std::getenv("TMPDIR") : ".";
    std::string stats_path = dir + "/infat_profile_smoke.json";

    GuestProfiler profiler;
    profiler.setSampleInterval(512);
    Observability obs;
    obs.profiler = &profiler;
    obs.statsJsonPath = stats_path;
    RunResult result = runWorkload("perimeter", Config::Subheap, obs);
    check(result.instructions > 0, "workload executed instructions");

    std::string err;
    std::optional<JsonValue> doc = jsonParseFile(stats_path, &err);
    check(doc.has_value(), "stats JSON parses");
    if (!doc) {
        std::fprintf(stderr, "  parse error: %s\n", err.c_str());
        return 1;
    }

    const JsonValue *profile = doc->find("profile");
    check(profile && profile->isObject(),
          "stats JSON has a profile section");
    if (!profile || !profile->isObject())
        return 1;

    for (const char *key :
         {"functions", "hot_blocks", "check_sites", "call_sites",
          "totals"})
        check(profile->find(key) != nullptr,
              (std::string("profile has ") + key).c_str());
    const JsonValue *totals = profile->find("totals");
    if (!totals)
        return 1;

    uint64_t vm_cycles = scalarOf(*doc, "vm", "cycles");
    uint64_t vm_checks = scalarOf(*doc, "vm", "implicit_checks");
    uint64_t vm_bnd = scalarOf(*doc, "vm", "cycles_bnd_ldst");
    uint64_t vm_calls = scalarOf(*doc, "vm", "calls");

    // Per-site/block attribution reconciles with the simulated
    // counters (docs/OBSERVABILITY.md lists these invariants).
    check(totals->find("block_cycles")->asUint() <= vm_cycles,
          "summed block self-cycles <= vm.cycles");
    check(totals->find("block_cycles")->asUint() > 0,
          "block attribution is non-empty");
    check(totals->find("check_executions")->asUint() == vm_checks,
          "summed check-site executions == vm.implicit_checks");
    check(totals->find("bnd_ldst_cycles")->asUint() == vm_bnd,
          "summed bnd spill/reload cycles == vm.cycles_bnd_ldst");
    check(totals->find("call_site_calls")->asUint() == vm_calls,
          "summed call-site calls == vm.calls");
    // No <= vm.cycles bound on call-site cycles: they are inclusive
    // callee time, so nested callees count at every enclosing site.
    check(totals->find("call_site_cycles")->asUint() > 0,
          "call-site cycle attribution is non-empty");

    // The ranked lists are cycle-sorted and within the totals.
    const JsonValue *blocks = profile->find("hot_blocks");
    uint64_t top_block_cycles = 0;
    bool sorted = true;
    uint64_t prev = ~0ULL;
    for (const JsonValue &b : blocks->arr) {
        uint64_t c = b.find("cycles")->asUint();
        if (c > prev)
            sorted = false;
        prev = c;
        top_block_cycles += c;
    }
    check(!blocks->arr.empty(), "hot_blocks is non-empty");
    check(sorted, "hot_blocks ranked by cycles descending");
    check(top_block_cycles <= vm_cycles,
          "top-block cycles sum <= vm.cycles");

    const JsonValue *sites = profile->find("check_sites");
    uint64_t top_site_cycles = 0;
    for (const JsonValue &s : sites->arr)
        top_site_cycles += s.find("cycles")->asUint();
    check(!sites->arr.empty(), "check_sites is non-empty");
    check(top_site_cycles <= vm_cycles,
          "top-site cycles sum <= vm.cycles");
    check(top_site_cycles <=
              totals->find("check_cycles")->asUint(),
          "top-site cycles sum <= total check cycles");

    const JsonValue *calls = profile->find("call_sites");
    uint64_t top_call_calls = 0;
    for (const JsonValue &s : calls->arr)
        top_call_calls += s.find("calls")->asUint();
    check(!calls->arr.empty(), "call_sites is non-empty");
    check(top_call_calls <= vm_calls,
          "top-call-site calls sum <= vm.calls");

    check(profiler.samples() > 0, "sampling collected stacks");

    std::remove(stats_path.c_str());

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all checks passed\n");
    return 0;
}
