/**
 * @file
 * End-to-end smoke test for the observability layer, run as the
 * `infat_stats_smoke` ctest.
 *
 * Runs one small workload with both a --stats-json-style export and a
 * Chrome trace sink attached, then re-parses the two JSON documents
 * with the support/json.hh parser and checks the shape the tooling
 * relies on: hierarchical stat groups for vm/promote/l1d/l2, at least
 * one histogram with non-empty buckets, and a traceEvents array whose
 * entries carry ph/ts/name. Exits non-zero (with a message) on any
 * violation, so the failure mode is self-describing in ctest output.
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/trace.hh"
#include "workloads/harness.hh"

using namespace infat;
using namespace infat::workloads;

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::fprintf(stderr, "ok:   %s\n", what);
    }
}

const JsonValue *
findGroup(const JsonValue &root, const char *name)
{
    const JsonValue *groups = root.find("groups");
    return groups ? groups->find(name) : nullptr;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::string dir = std::getenv("TMPDIR") ? std::getenv("TMPDIR") : ".";
    std::string stats_path = dir + "/infat_stats_smoke.json";
    std::string trace_path = dir + "/infat_stats_smoke.trace.json";

    Observability obs;
    obs.statsJsonPath = stats_path;
    ChromeTraceSink sink(trace_path);
    obs.traceSink = &sink;
    // Every category except the per-instruction exec firehose, which
    // would make this smoke test write (and re-parse) an exec event
    // for each of the workload's ~500k instructions.
    obs.traceCategories = traceMaskAll & ~traceBit(TraceCategory::Exec);

    RunResult result = runWorkload("perimeter", Config::Subheap, obs);
    sink.close();
    check(result.checksum != 0, "workload produced a checksum");
    check(result.instructions > 0, "workload executed instructions");

    // --- stats JSON ---
    std::string err;
    std::optional<JsonValue> stats_doc = jsonParseFile(stats_path, &err);
    check(stats_doc.has_value(), "stats JSON parses");
    if (!stats_doc) {
        std::fprintf(stderr, "  parse error: %s\n", err.c_str());
        return 1;
    }
    const JsonValue &stats = *stats_doc;

    for (const char *group : {"vm", "promote", "l1d", "l2", "runtime",
                              "mem"}) {
        check(findGroup(stats, group) != nullptr,
              (std::string("stats has group ") + group).c_str());
    }

    const JsonValue *vm = findGroup(stats, "vm");
    if (vm) {
        const JsonValue *scalars = vm->find("scalars");
        const JsonValue *instrs =
            scalars ? scalars->find("instructions") : nullptr;
        check(instrs && instrs->asUint() == result.instructions,
              "vm.instructions matches RunResult");
        const JsonValue *cycles =
            scalars ? scalars->find("cycles") : nullptr;
        check(cycles && cycles->asUint() == result.cycles,
              "vm.cycles matches RunResult");
    }

    // At least one histogram anywhere must have non-empty buckets.
    const JsonValue *promote = findGroup(stats, "promote");
    const JsonValue *hist = nullptr;
    if (promote) {
        const JsonValue *hists = promote->find("histograms");
        hist = hists ? hists->find("promote_cycles") : nullptr;
    }
    check(hist != nullptr, "promote.promote_cycles histogram present");
    if (hist) {
        const JsonValue *buckets = hist->find("buckets");
        check(buckets && buckets->isArray() && !buckets->arr.empty(),
              "promote_cycles has non-empty buckets");
        const JsonValue *count = hist->find("count");
        check(count && count->asUint() > 0,
              "promote_cycles sampled at least once");
    }

    // --- Chrome trace JSON ---
    std::optional<JsonValue> trace_doc = jsonParseFile(trace_path, &err);
    check(trace_doc.has_value(), "trace JSON parses");
    if (!trace_doc) {
        std::fprintf(stderr, "  parse error: %s\n", err.c_str());
        return 1;
    }

    const JsonValue *events = trace_doc->find("traceEvents");
    check(events && events->isArray(), "trace has traceEvents array");
    if (events) {
        check(!events->arr.empty(), "traceEvents is non-empty");
        bool shape_ok = !events->arr.empty();
        for (const JsonValue &ev : events->arr) {
            if (!ev.find("ph") || !ev.find("ts") || !ev.find("name") ||
                !ev.find("pid") || !ev.find("tid")) {
                shape_ok = false;
                break;
            }
        }
        check(shape_ok, "every event has ph/ts/name/pid/tid");
    }

    std::remove(stats_path.c_str());
    std::remove(trace_path.c_str());

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all checks passed\n");
    return 0;
}
