/**
 * @file
 * End-to-end smoke test for the temporal (lock-and-key) defense, run
 * as the `infat_temporal_smoke` ctest.
 *
 * Runs the generated Juliet suite — including the temporal CWE cells
 * (use-after-free, dangling reload, double free; see juliet.hh) —
 * with the shadow oracle attached under both allocators, and asserts
 * the temporal detection matrix:
 *
 *  - every version-covered temporal bad case traps: use-after-free
 *    through the promote path, reloads into recycled heap slots and
 *    re-registered stack frames, double frees, and stale frees of
 *    recycled slots;
 *  - every undetected temporal case sits in a named explanation
 *    bucket — "register_held" (the dangling pointer never round-trips
 *    through promote) or "generation_wraparound" (16 slot reuses
 *    alias the 4-bit key) — and those buckets hold exactly the
 *    documented cells, nothing more;
 *  - zero temporal false positives: no live pointer trips the
 *    generation comparison and no correct free is rejected, even
 *    across slot recycling;
 *  - zero unexplained temporal false negatives against the oracle's
 *    liveness ground truth.
 *
 * The combined spatial+temporal detection matrix is exported through
 * the stat registry (--stats-json=PATH, default under TMPDIR),
 * re-parsed, and the counters the CI jobs rely on are asserted
 * present. Exits non-zero with a self-describing message on any
 * violation.
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "juliet/juliet.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"

using namespace infat;

namespace {

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    } else {
        std::fprintf(stderr, "ok:   %s\n", what.c_str());
    }
}

void
checkTemporalSuite(const juliet::OracleSuiteResult &suite,
                   StatGroup &group, const char *label)
{
    std::string prefix(label);
    check(suite.badMissed == 0,
          prefix + ": no unexplained bad-case misses");
    check(suite.suiteFalsePositives == 0,
          prefix + ": every good case passed");
    check(suite.falseNegatives == 0 && suite.falsePositives == 0,
          prefix + ": spatial oracle axes stay at zero");
    check(suite.temporalTruePositives > 0,
          prefix + ": temporal detections registered as TPs");
    check(suite.temporalFalsePositives == 0,
          prefix + ": zero temporal false positives");
    check(suite.temporalFalseNegativesUnexplained == 0,
          prefix + ": zero unexplained temporal false negatives");

    // Per-cell detection matrix: every version-covered temporal bad
    // case must have trapped; the explained misses must be exactly
    // the documented residual cells.
    size_t temporal_bad = 0;
    size_t explained_misses = 0;
    for (const juliet::OracleCaseOutcome &oc : suite.outcomes) {
        const juliet::TestCase &tc = oc.outcome.testCase;
        if (!tc.temporal())
            continue;
        std::string cell = std::string(toString(tc.flaw)) + "_" +
                           toString(tc.location) + "_" +
                           toString(tc.pattern);
        if (!tc.bad) {
            check(!oc.outcome.trapped,
                  prefix + ": good variant of " + cell + " passes");
            continue;
        }
        ++temporal_bad;
        group.counter("matrix_" + cell)
            .set(oc.outcome.trapped ? 1 : 0);
        if (tc.expectedMissBucket() == nullptr) {
            check(oc.outcome.trapped,
                  prefix + ": detects " + cell);
        } else {
            explained_misses += !oc.outcome.trapped;
        }
    }
    check(temporal_bad == 11,
          prefix + ": all 11 temporal bad cells ran");
    check(explained_misses == 4 && suite.badExplained == 4,
          prefix + ": exactly the 4 documented residual misses");
    auto bucket = [&](const char *name) -> size_t {
        auto it = suite.missBuckets.find(name);
        return it == suite.missBuckets.end() ? 0 : it->second;
    };
    check(bucket("register_held") == 3,
          prefix + ": register_held bucket holds its 3 cells");
    check(bucket("generation_wraparound") == 1,
          prefix + ": generation_wraparound bucket holds its cell");
    check(suite.missBuckets.size() == 2,
          prefix + ": no unexpected explanation buckets");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string dir =
        std::getenv("TMPDIR") ? std::getenv("TMPDIR") : ".";
    std::string stats_path = dir + "/infat_temporal_smoke.json";
    bool keep_stats = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--stats-json=", 13) == 0) {
            stats_path = argv[i] + 13;
            keep_stats = true;
        }
    }

    StatGroup wrapped_group("juliet_temporal_wrapped");
    StatGroup subheap_group("juliet_temporal_subheap");

    juliet::OracleSuiteResult wrapped =
        juliet::runSuiteWithOracle(AllocatorKind::Wrapped);
    wrapped.addToStats(wrapped_group);
    checkTemporalSuite(wrapped, wrapped_group, "temporal/wrapped");

    juliet::OracleSuiteResult subheap =
        juliet::runSuiteWithOracle(AllocatorKind::Subheap);
    subheap.addToStats(subheap_group);
    checkTemporalSuite(subheap, subheap_group, "temporal/subheap");

    // --- stats-json export and re-parse ---
    StatRegistry registry;
    registry.add(&wrapped_group);
    registry.add(&subheap_group);
    registry.snapshot().writeFile(stats_path);

    std::string err;
    std::optional<JsonValue> doc = jsonParseFile(stats_path, &err);
    check(doc.has_value(), "stats JSON parses");
    if (doc) {
        const JsonValue *groups = doc->find("groups");
        for (const char *name :
             {"juliet_temporal_wrapped", "juliet_temporal_subheap"}) {
            const JsonValue *g =
                groups ? groups->find(name) : nullptr;
            check(g != nullptr,
                  std::string("stats has group ") + name);
            const JsonValue *scalars = g ? g->find("scalars") : nullptr;
            for (const char *counter :
                 {"bad_detected", "bad_missed", "bad_explained",
                  "temporal_true_positives", "temporal_false_positives",
                  "temporal_false_negatives_unexplained",
                  "miss_bucket_register_held",
                  "miss_bucket_generation_wraparound"}) {
                check(scalars && scalars->find(counter) != nullptr,
                      std::string(name) + " exports " + counter);
            }
            const JsonValue *fp =
                scalars ? scalars->find("temporal_false_positives")
                        : nullptr;
            check(fp && fp->asUint() == 0,
                  std::string(name) +
                      ".temporal_false_positives exported as zero");
        }
    } else {
        std::fprintf(stderr, "  parse error: %s\n", err.c_str());
    }

    if (!keep_stats)
        std::remove(stats_path.c_str());

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::fprintf(stderr, "all checks passed\n");
    return 0;
}
