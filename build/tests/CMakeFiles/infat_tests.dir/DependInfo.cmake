
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alloc_test.cc" "tests/CMakeFiles/infat_tests.dir/alloc_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/alloc_test.cc.o.d"
  "/root/repo/tests/area_test.cc" "tests/CMakeFiles/infat_tests.dir/area_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/area_test.cc.o.d"
  "/root/repo/tests/compiler_test.cc" "tests/CMakeFiles/infat_tests.dir/compiler_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/compiler_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/infat_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/ir_test.cc" "tests/CMakeFiles/infat_tests.dir/ir_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/ir_test.cc.o.d"
  "/root/repo/tests/juliet_test.cc" "tests/CMakeFiles/infat_tests.dir/juliet_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/juliet_test.cc.o.d"
  "/root/repo/tests/layout_test.cc" "tests/CMakeFiles/infat_tests.dir/layout_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/layout_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/infat_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/mem_cache_test.cc" "tests/CMakeFiles/infat_tests.dir/mem_cache_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/mem_cache_test.cc.o.d"
  "/root/repo/tests/metadata_test.cc" "tests/CMakeFiles/infat_tests.dir/metadata_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/metadata_test.cc.o.d"
  "/root/repo/tests/promote_test.cc" "tests/CMakeFiles/infat_tests.dir/promote_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/promote_test.cc.o.d"
  "/root/repo/tests/registry_test.cc" "tests/CMakeFiles/infat_tests.dir/registry_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/registry_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/infat_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/infat_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/tag_test.cc" "tests/CMakeFiles/infat_tests.dir/tag_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/tag_test.cc.o.d"
  "/root/repo/tests/temporal_test.cc" "tests/CMakeFiles/infat_tests.dir/temporal_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/temporal_test.cc.o.d"
  "/root/repo/tests/vm_property_test.cc" "tests/CMakeFiles/infat_tests.dir/vm_property_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/vm_property_test.cc.o.d"
  "/root/repo/tests/vm_smoke_test.cc" "tests/CMakeFiles/infat_tests.dir/vm_smoke_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/vm_smoke_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/infat_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/infat_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/infat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/infat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/juliet/CMakeFiles/infat_juliet.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/infat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/infat_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/infat_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/infat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ifp/CMakeFiles/infat_ifp.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/infat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/infat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/infat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
