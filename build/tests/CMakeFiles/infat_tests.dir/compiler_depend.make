# Empty compiler generated dependencies file for infat_tests.
# This may be replaced when dependencies are built.
