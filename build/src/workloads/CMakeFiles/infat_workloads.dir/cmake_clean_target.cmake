file(REMOVE_RECURSE
  "libinfat_workloads.a"
)
