
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/anagram.cc" "src/workloads/CMakeFiles/infat_workloads.dir/anagram.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/anagram.cc.o.d"
  "/root/repo/src/workloads/bh.cc" "src/workloads/CMakeFiles/infat_workloads.dir/bh.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/bh.cc.o.d"
  "/root/repo/src/workloads/bisort.cc" "src/workloads/CMakeFiles/infat_workloads.dir/bisort.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/bisort.cc.o.d"
  "/root/repo/src/workloads/bzip2.cc" "src/workloads/CMakeFiles/infat_workloads.dir/bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/bzip2.cc.o.d"
  "/root/repo/src/workloads/coremark.cc" "src/workloads/CMakeFiles/infat_workloads.dir/coremark.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/coremark.cc.o.d"
  "/root/repo/src/workloads/em3d.cc" "src/workloads/CMakeFiles/infat_workloads.dir/em3d.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/em3d.cc.o.d"
  "/root/repo/src/workloads/ft.cc" "src/workloads/CMakeFiles/infat_workloads.dir/ft.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/ft.cc.o.d"
  "/root/repo/src/workloads/harness.cc" "src/workloads/CMakeFiles/infat_workloads.dir/harness.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/harness.cc.o.d"
  "/root/repo/src/workloads/health.cc" "src/workloads/CMakeFiles/infat_workloads.dir/health.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/health.cc.o.d"
  "/root/repo/src/workloads/ks.cc" "src/workloads/CMakeFiles/infat_workloads.dir/ks.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/ks.cc.o.d"
  "/root/repo/src/workloads/mst.cc" "src/workloads/CMakeFiles/infat_workloads.dir/mst.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/mst.cc.o.d"
  "/root/repo/src/workloads/perimeter.cc" "src/workloads/CMakeFiles/infat_workloads.dir/perimeter.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/perimeter.cc.o.d"
  "/root/repo/src/workloads/power.cc" "src/workloads/CMakeFiles/infat_workloads.dir/power.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/power.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/infat_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/sjeng.cc" "src/workloads/CMakeFiles/infat_workloads.dir/sjeng.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/sjeng.cc.o.d"
  "/root/repo/src/workloads/treeadd.cc" "src/workloads/CMakeFiles/infat_workloads.dir/treeadd.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/treeadd.cc.o.d"
  "/root/repo/src/workloads/tsp.cc" "src/workloads/CMakeFiles/infat_workloads.dir/tsp.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/tsp.cc.o.d"
  "/root/repo/src/workloads/voronoi.cc" "src/workloads/CMakeFiles/infat_workloads.dir/voronoi.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/voronoi.cc.o.d"
  "/root/repo/src/workloads/wolfcrypt_dh.cc" "src/workloads/CMakeFiles/infat_workloads.dir/wolfcrypt_dh.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/wolfcrypt_dh.cc.o.d"
  "/root/repo/src/workloads/yacr2.cc" "src/workloads/CMakeFiles/infat_workloads.dir/yacr2.cc.o" "gcc" "src/workloads/CMakeFiles/infat_workloads.dir/yacr2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/infat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/infat_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/infat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/infat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ifp/CMakeFiles/infat_ifp.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/infat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/infat_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/infat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/infat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
