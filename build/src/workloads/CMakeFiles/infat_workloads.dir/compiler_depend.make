# Empty compiler generated dependencies file for infat_workloads.
# This may be replaced when dependencies are built.
