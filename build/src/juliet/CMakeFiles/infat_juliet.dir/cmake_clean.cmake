file(REMOVE_RECURSE
  "CMakeFiles/infat_juliet.dir/juliet.cc.o"
  "CMakeFiles/infat_juliet.dir/juliet.cc.o.d"
  "libinfat_juliet.a"
  "libinfat_juliet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_juliet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
