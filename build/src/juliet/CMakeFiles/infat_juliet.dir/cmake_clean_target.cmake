file(REMOVE_RECURSE
  "libinfat_juliet.a"
)
