# Empty dependencies file for infat_juliet.
# This may be replaced when dependencies are built.
