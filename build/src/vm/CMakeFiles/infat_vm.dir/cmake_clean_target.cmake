file(REMOVE_RECURSE
  "libinfat_vm.a"
)
