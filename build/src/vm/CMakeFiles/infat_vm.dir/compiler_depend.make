# Empty compiler generated dependencies file for infat_vm.
# This may be replaced when dependencies are built.
