file(REMOVE_RECURSE
  "CMakeFiles/infat_vm.dir/libc_model.cc.o"
  "CMakeFiles/infat_vm.dir/libc_model.cc.o.d"
  "CMakeFiles/infat_vm.dir/machine.cc.o"
  "CMakeFiles/infat_vm.dir/machine.cc.o.d"
  "CMakeFiles/infat_vm.dir/trap.cc.o"
  "CMakeFiles/infat_vm.dir/trap.cc.o.d"
  "libinfat_vm.a"
  "libinfat_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
