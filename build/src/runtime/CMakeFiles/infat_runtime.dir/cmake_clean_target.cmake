file(REMOVE_RECURSE
  "libinfat_runtime.a"
)
