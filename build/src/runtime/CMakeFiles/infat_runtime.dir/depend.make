# Empty dependencies file for infat_runtime.
# This may be replaced when dependencies are built.
