file(REMOVE_RECURSE
  "CMakeFiles/infat_runtime.dir/runtime.cc.o"
  "CMakeFiles/infat_runtime.dir/runtime.cc.o.d"
  "libinfat_runtime.a"
  "libinfat_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
