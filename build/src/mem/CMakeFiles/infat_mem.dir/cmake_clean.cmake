file(REMOVE_RECURSE
  "CMakeFiles/infat_mem.dir/guest_memory.cc.o"
  "CMakeFiles/infat_mem.dir/guest_memory.cc.o.d"
  "libinfat_mem.a"
  "libinfat_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
