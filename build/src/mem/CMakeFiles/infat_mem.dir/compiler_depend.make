# Empty compiler generated dependencies file for infat_mem.
# This may be replaced when dependencies are built.
