file(REMOVE_RECURSE
  "libinfat_mem.a"
)
