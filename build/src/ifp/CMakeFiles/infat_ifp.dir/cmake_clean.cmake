file(REMOVE_RECURSE
  "CMakeFiles/infat_ifp.dir/area_model.cc.o"
  "CMakeFiles/infat_ifp.dir/area_model.cc.o.d"
  "CMakeFiles/infat_ifp.dir/layout_table.cc.o"
  "CMakeFiles/infat_ifp.dir/layout_table.cc.o.d"
  "CMakeFiles/infat_ifp.dir/metadata.cc.o"
  "CMakeFiles/infat_ifp.dir/metadata.cc.o.d"
  "CMakeFiles/infat_ifp.dir/ops.cc.o"
  "CMakeFiles/infat_ifp.dir/ops.cc.o.d"
  "CMakeFiles/infat_ifp.dir/promote_engine.cc.o"
  "CMakeFiles/infat_ifp.dir/promote_engine.cc.o.d"
  "CMakeFiles/infat_ifp.dir/tag.cc.o"
  "CMakeFiles/infat_ifp.dir/tag.cc.o.d"
  "libinfat_ifp.a"
  "libinfat_ifp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_ifp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
