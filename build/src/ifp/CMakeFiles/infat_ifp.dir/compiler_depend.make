# Empty compiler generated dependencies file for infat_ifp.
# This may be replaced when dependencies are built.
