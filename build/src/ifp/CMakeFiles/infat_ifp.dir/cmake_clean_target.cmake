file(REMOVE_RECURSE
  "libinfat_ifp.a"
)
