
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ifp/area_model.cc" "src/ifp/CMakeFiles/infat_ifp.dir/area_model.cc.o" "gcc" "src/ifp/CMakeFiles/infat_ifp.dir/area_model.cc.o.d"
  "/root/repo/src/ifp/layout_table.cc" "src/ifp/CMakeFiles/infat_ifp.dir/layout_table.cc.o" "gcc" "src/ifp/CMakeFiles/infat_ifp.dir/layout_table.cc.o.d"
  "/root/repo/src/ifp/metadata.cc" "src/ifp/CMakeFiles/infat_ifp.dir/metadata.cc.o" "gcc" "src/ifp/CMakeFiles/infat_ifp.dir/metadata.cc.o.d"
  "/root/repo/src/ifp/ops.cc" "src/ifp/CMakeFiles/infat_ifp.dir/ops.cc.o" "gcc" "src/ifp/CMakeFiles/infat_ifp.dir/ops.cc.o.d"
  "/root/repo/src/ifp/promote_engine.cc" "src/ifp/CMakeFiles/infat_ifp.dir/promote_engine.cc.o" "gcc" "src/ifp/CMakeFiles/infat_ifp.dir/promote_engine.cc.o.d"
  "/root/repo/src/ifp/tag.cc" "src/ifp/CMakeFiles/infat_ifp.dir/tag.cc.o" "gcc" "src/ifp/CMakeFiles/infat_ifp.dir/tag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/infat_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/infat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/infat_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
