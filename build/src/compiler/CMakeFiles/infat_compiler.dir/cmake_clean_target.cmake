file(REMOVE_RECURSE
  "libinfat_compiler.a"
)
