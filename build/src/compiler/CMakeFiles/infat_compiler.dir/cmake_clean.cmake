file(REMOVE_RECURSE
  "CMakeFiles/infat_compiler.dir/escape.cc.o"
  "CMakeFiles/infat_compiler.dir/escape.cc.o.d"
  "CMakeFiles/infat_compiler.dir/instrument.cc.o"
  "CMakeFiles/infat_compiler.dir/instrument.cc.o.d"
  "CMakeFiles/infat_compiler.dir/layout_gen.cc.o"
  "CMakeFiles/infat_compiler.dir/layout_gen.cc.o.d"
  "libinfat_compiler.a"
  "libinfat_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
