# Empty dependencies file for infat_compiler.
# This may be replaced when dependencies are built.
