file(REMOVE_RECURSE
  "CMakeFiles/infat_cache.dir/cache.cc.o"
  "CMakeFiles/infat_cache.dir/cache.cc.o.d"
  "libinfat_cache.a"
  "libinfat_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
