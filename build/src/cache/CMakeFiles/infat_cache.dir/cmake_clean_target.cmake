file(REMOVE_RECURSE
  "libinfat_cache.a"
)
