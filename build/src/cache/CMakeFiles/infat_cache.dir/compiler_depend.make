# Empty compiler generated dependencies file for infat_cache.
# This may be replaced when dependencies are built.
