# Empty dependencies file for infat_ir.
# This may be replaced when dependencies are built.
