file(REMOVE_RECURSE
  "libinfat_ir.a"
)
