file(REMOVE_RECURSE
  "CMakeFiles/infat_ir.dir/builder.cc.o"
  "CMakeFiles/infat_ir.dir/builder.cc.o.d"
  "CMakeFiles/infat_ir.dir/instr.cc.o"
  "CMakeFiles/infat_ir.dir/instr.cc.o.d"
  "CMakeFiles/infat_ir.dir/module.cc.o"
  "CMakeFiles/infat_ir.dir/module.cc.o.d"
  "CMakeFiles/infat_ir.dir/printer.cc.o"
  "CMakeFiles/infat_ir.dir/printer.cc.o.d"
  "CMakeFiles/infat_ir.dir/type.cc.o"
  "CMakeFiles/infat_ir.dir/type.cc.o.d"
  "CMakeFiles/infat_ir.dir/verifier.cc.o"
  "CMakeFiles/infat_ir.dir/verifier.cc.o.d"
  "libinfat_ir.a"
  "libinfat_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
