file(REMOVE_RECURSE
  "libinfat_support.a"
)
