file(REMOVE_RECURSE
  "CMakeFiles/infat_support.dir/logging.cc.o"
  "CMakeFiles/infat_support.dir/logging.cc.o.d"
  "CMakeFiles/infat_support.dir/siphash.cc.o"
  "CMakeFiles/infat_support.dir/siphash.cc.o.d"
  "CMakeFiles/infat_support.dir/stats.cc.o"
  "CMakeFiles/infat_support.dir/stats.cc.o.d"
  "CMakeFiles/infat_support.dir/table.cc.o"
  "CMakeFiles/infat_support.dir/table.cc.o.d"
  "libinfat_support.a"
  "libinfat_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
