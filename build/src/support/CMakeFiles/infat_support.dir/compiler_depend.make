# Empty compiler generated dependencies file for infat_support.
# This may be replaced when dependencies are built.
