# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("mem")
subdirs("cache")
subdirs("alloc")
subdirs("ifp")
subdirs("ir")
subdirs("compiler")
subdirs("vm")
subdirs("runtime")
subdirs("workloads")
subdirs("juliet")
