file(REMOVE_RECURSE
  "libinfat_alloc.a"
)
