# Empty dependencies file for infat_alloc.
# This may be replaced when dependencies are built.
