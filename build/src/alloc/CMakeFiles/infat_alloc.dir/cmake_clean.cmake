file(REMOVE_RECURSE
  "CMakeFiles/infat_alloc.dir/buddy_allocator.cc.o"
  "CMakeFiles/infat_alloc.dir/buddy_allocator.cc.o.d"
  "CMakeFiles/infat_alloc.dir/freelist_allocator.cc.o"
  "CMakeFiles/infat_alloc.dir/freelist_allocator.cc.o.d"
  "libinfat_alloc.a"
  "libinfat_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infat_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
