file(REMOVE_RECURSE
  "../bench/bench_table2_schemes"
  "../bench/bench_table2_schemes.pdb"
  "CMakeFiles/bench_table2_schemes.dir/bench_table2_schemes.cc.o"
  "CMakeFiles/bench_table2_schemes.dir/bench_table2_schemes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
