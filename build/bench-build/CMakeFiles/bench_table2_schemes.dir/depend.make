# Empty dependencies file for bench_table2_schemes.
# This may be replaced when dependencies are built.
