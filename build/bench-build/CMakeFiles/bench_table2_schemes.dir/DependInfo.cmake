
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_schemes.cc" "bench-build/CMakeFiles/bench_table2_schemes.dir/bench_table2_schemes.cc.o" "gcc" "bench-build/CMakeFiles/bench_table2_schemes.dir/bench_table2_schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/infat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/juliet/CMakeFiles/infat_juliet.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/infat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/infat_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/infat_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/infat_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/infat_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ifp/CMakeFiles/infat_ifp.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/infat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/infat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/infat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
