file(REMOVE_RECURSE
  "../bench/bench_cache_effects"
  "../bench/bench_cache_effects.pdb"
  "CMakeFiles/bench_cache_effects.dir/bench_cache_effects.cc.o"
  "CMakeFiles/bench_cache_effects.dir/bench_cache_effects.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
