# Empty dependencies file for bench_cache_effects.
# This may be replaced when dependencies are built.
