file(REMOVE_RECURSE
  "../bench/bench_fig11_instrmix"
  "../bench/bench_fig11_instrmix.pdb"
  "CMakeFiles/bench_fig11_instrmix.dir/bench_fig11_instrmix.cc.o"
  "CMakeFiles/bench_fig11_instrmix.dir/bench_fig11_instrmix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_instrmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
