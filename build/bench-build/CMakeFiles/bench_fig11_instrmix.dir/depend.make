# Empty dependencies file for bench_fig11_instrmix.
# This may be replaced when dependencies are built.
