file(REMOVE_RECURSE
  "../bench/bench_juliet"
  "../bench/bench_juliet.pdb"
  "CMakeFiles/bench_juliet.dir/bench_juliet.cc.o"
  "CMakeFiles/bench_juliet.dir/bench_juliet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_juliet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
