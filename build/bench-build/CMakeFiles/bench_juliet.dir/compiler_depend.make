# Empty compiler generated dependencies file for bench_juliet.
# This may be replaced when dependencies are built.
