file(REMOVE_RECURSE
  "../bench/bench_fig10_perf"
  "../bench/bench_fig10_perf.pdb"
  "CMakeFiles/bench_fig10_perf.dir/bench_fig10_perf.cc.o"
  "CMakeFiles/bench_fig10_perf.dir/bench_fig10_perf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
