# Empty dependencies file for bench_fig10_perf.
# This may be replaced when dependencies are built.
