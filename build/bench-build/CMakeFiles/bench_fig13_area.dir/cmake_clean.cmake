file(REMOVE_RECURSE
  "../bench/bench_fig13_area"
  "../bench/bench_fig13_area.pdb"
  "CMakeFiles/bench_fig13_area.dir/bench_fig13_area.cc.o"
  "CMakeFiles/bench_fig13_area.dir/bench_fig13_area.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
