# Empty compiler generated dependencies file for bench_asic_prediction.
# This may be replaced when dependencies are built.
