file(REMOVE_RECURSE
  "../bench/bench_asic_prediction"
  "../bench/bench_asic_prediction.pdb"
  "CMakeFiles/bench_asic_prediction.dir/bench_asic_prediction.cc.o"
  "CMakeFiles/bench_asic_prediction.dir/bench_asic_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asic_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
