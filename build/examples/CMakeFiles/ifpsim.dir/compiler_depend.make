# Empty compiler generated dependencies file for ifpsim.
# This may be replaced when dependencies are built.
