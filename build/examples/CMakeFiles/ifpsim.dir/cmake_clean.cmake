file(REMOVE_RECURSE
  "CMakeFiles/ifpsim.dir/ifpsim.cpp.o"
  "CMakeFiles/ifpsim.dir/ifpsim.cpp.o.d"
  "ifpsim"
  "ifpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
