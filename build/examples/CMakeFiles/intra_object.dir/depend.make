# Empty dependencies file for intra_object.
# This may be replaced when dependencies are built.
