file(REMOVE_RECURSE
  "CMakeFiles/intra_object.dir/intra_object.cpp.o"
  "CMakeFiles/intra_object.dir/intra_object.cpp.o.d"
  "intra_object"
  "intra_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intra_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
