file(REMOVE_RECURSE
  "CMakeFiles/legacy_interop.dir/legacy_interop.cpp.o"
  "CMakeFiles/legacy_interop.dir/legacy_interop.cpp.o.d"
  "legacy_interop"
  "legacy_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
