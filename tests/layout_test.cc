/**
 * @file
 * Property tests for layout-table generation: for randomly generated
 * nested types, the generated table must verify structurally, its
 * entry count must match layoutSubtreeEntries(), field deltas must
 * point at the right entries, encode/decode must round-trip, and the
 * promote engine must narrow every leaf field of every element to
 * exactly the right bounds.
 */

#include <gtest/gtest.h>

#include "compiler/layout_gen.hh"
#include "ifp/metadata.hh"
#include "ifp/ops.hh"
#include "ifp/promote_engine.hh"
#include "ir/module.hh"
#include "support/rng.hh"

namespace infat {
namespace {

using ir::StructType;
using ir::Type;
using ir::TypeContext;

/** Random nested struct generator (bounded depth and size). */
class TypeGen
{
  public:
    TypeGen(TypeContext &tc, Rng &rng) : tc_(tc), rng_(rng) {}

    StructType *
    randomStruct(unsigned depth)
    {
        StructType *s = tc_.createStruct(
            strfmt("T%u", counter_++));
        std::vector<const Type *> fields;
        unsigned num_fields = 1 + rng_.below(4);
        for (unsigned i = 0; i < num_fields; ++i)
            fields.push_back(randomField(depth));
        s->setBody(std::move(fields));
        return s;
    }

  private:
    const Type *
    randomField(unsigned depth)
    {
        unsigned pick = static_cast<unsigned>(rng_.below(
            depth == 0 ? 3 : 5));
        switch (pick) {
          case 0:
            return tc_.i32();
          case 1:
            return tc_.i64();
          case 2:
            return tc_.array(tc_.i64(), 1 + rng_.below(4));
          case 3:
            return randomStruct(depth - 1);
          default:
            return tc_.array(randomStruct(depth - 1),
                             1 + rng_.below(3));
        }
    }

    TypeContext &tc_;
    Rng &rng_;
    unsigned counter_ = 0;
};

class LayoutProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LayoutProperty, GeneratedTablesAreWellFormed)
{
    ir::Module m;
    Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
    TypeGen gen(m.types(), rng);
    StructType *root = gen.randomStruct(3);

    LayoutTable table = buildLayoutTable(root);
    std::string error;
    EXPECT_TRUE(table.verify(&error)) << error;
    EXPECT_EQ(table.numEntries(), layoutSubtreeEntries(root));
    EXPECT_EQ(table.entry(0).bound, root->size());

    // Field deltas point at entries whose offsets match the ABI.
    for (size_t f = 0; f < root->numFields(); ++f) {
        uint64_t delta = layoutFieldDelta(root, static_cast<unsigned>(f));
        ASSERT_LT(delta, table.numEntries());
        const LayoutEntry &entry = table.entry(delta);
        EXPECT_EQ(entry.parent, 0u);
        EXPECT_EQ(entry.base, root->fieldOffset(f));
        EXPECT_EQ(entry.bound,
                  root->fieldOffset(f) + root->field(f)->size());
    }

    // Encode/decode round-trips every entry.
    for (size_t i = 0; i < table.numEntries(); ++i) {
        uint64_t w0, w1;
        table.entry(i).encode(w0, w1);
        EXPECT_EQ(LayoutEntry::decode(w0, w1), table.entry(i));
    }
}

TEST_P(LayoutProperty, PromoteNarrowsEveryTopLevelField)
{
    ir::Module m;
    Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
    TypeGen gen(m.types(), rng);
    StructType *root = gen.randomStruct(2);
    if (root->size() > IfpConfig::localMaxObjectBytes ||
        layoutSubtreeEntries(root) > 64) {
        GTEST_SKIP() << "type too large for the local-offset scheme";
    }

    GuestMemory mem;
    IfpControlRegs regs;
    regs.macKey = {11, 22};
    PromoteEngine engine(mem, nullptr, regs);

    LayoutTable table = buildLayoutTable(root);
    GuestAddr lt = 0x9000;
    table.writeTo(mem, lt);

    GuestAddr base = 0x4000;
    GuestAddr meta = base + roundUp(root->size(), 16);
    LocalOffsetMeta::write(mem, meta, root->size(), lt, regs.macKey);
    TaggedPtr obj = TaggedPtr::make(base, Scheme::LocalOffset,
                                    ((meta - base) / 16) << 6);

    for (size_t f = 0; f < root->numFields(); ++f) {
        uint64_t idx = layoutFieldDelta(root, static_cast<unsigned>(f));
        uint64_t off = root->fieldOffset(f);
        TaggedPtr p = ops::ifpAdd(obj.withSubobjIndex(idx),
                                  static_cast<int64_t>(off),
                                  Bounds::cleared());
        PromoteResult r = engine.promote(p);
        ASSERT_EQ(r.outcome, PromoteResult::Outcome::Retrieved)
            << root->toString() << " field " << f;
        EXPECT_TRUE(r.narrowSucceeded);
        EXPECT_EQ(r.bounds,
                  Bounds(base + off, base + off + root->field(f)->size()))
            << "field " << f << " of " << root->toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutProperty,
                         ::testing::Range(0, 24));

TEST(Layout, ArrayOfArrays)
{
    ir::Module m;
    TypeContext &tc = m.types();
    // [2 x [3 x i64]] as a root allocation.
    const Type *inner = tc.array(tc.i64(), 3);
    const Type *outer = tc.array(inner, 2);
    LayoutTable table = buildLayoutTable(outer);
    ASSERT_EQ(table.numEntries(), 2u);
    EXPECT_EQ(table.entry(0), (LayoutEntry{0, 0, 48, 24}));
    EXPECT_EQ(table.entry(1), (LayoutEntry{0, 0, 24, 8}));
}

TEST(Layout, ScalarTypesGetNoTable)
{
    ir::Module m;
    TypeContext &tc = m.types();
    LayoutRegistry registry;
    EXPECT_EQ(registry.tableFor(tc.i64()), ir::noLayout);
    EXPECT_EQ(registry.tableFor(tc.array(tc.i64(), 100)), ir::noLayout);
    EXPECT_EQ(registry.tableFor(tc.ptr(tc.i64())), ir::noLayout);
}

TEST(Layout, RegistryDeduplicatesByType)
{
    ir::Module m;
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    LayoutRegistry registry;
    ir::LayoutId a = registry.tableFor(s);
    ir::LayoutId b = registry.tableFor(s);
    EXPECT_EQ(a, b);
    EXPECT_EQ(registry.numTables(), 1u);
    EXPECT_EQ(registry.find(s), a);
    EXPECT_EQ(registry.find(tc.i64()), ir::noLayout);
}

} // namespace
} // namespace infat
