/**
 * @file
 * Unit tests for the three in-memory metadata encodings and their MAC
 * binding (paper §3.3).
 */

#include <gtest/gtest.h>

#include "ifp/metadata.hh"
#include "mem/guest_memory.hh"

namespace infat {
namespace {

class MetadataTest : public ::testing::Test
{
  protected:
    GuestMemory mem;
    MacKey key{0x1234, 0x5678};
};

TEST_F(MetadataTest, LocalOffsetRoundTrip)
{
    LocalOffsetMeta::write(mem, 0x2000, 456, 0x9000, key);
    LocalOffsetMeta meta = LocalOffsetMeta::read(mem, 0x2000);
    EXPECT_EQ(meta.objectSize, 456u);
    EXPECT_EQ(meta.layoutTable, 0x9000u);
    EXPECT_EQ(meta.magic, LocalOffsetMeta::magicValue);
    EXPECT_TRUE(meta.verify(0x2000, key));
}

TEST_F(MetadataTest, LocalOffsetMacBindsLocation)
{
    LocalOffsetMeta::write(mem, 0x2000, 64, 0, key);
    // Replay the same bytes at a different address.
    uint64_t w0 = mem.load<uint64_t>(0x2000);
    uint64_t w1 = mem.load<uint64_t>(0x2008);
    mem.store<uint64_t>(0x3000, w0);
    mem.store<uint64_t>(0x3008, w1);
    LocalOffsetMeta moved = LocalOffsetMeta::read(mem, 0x3000);
    EXPECT_FALSE(moved.verify(0x3000, key));
}

TEST_F(MetadataTest, LocalOffsetMacBindsKey)
{
    LocalOffsetMeta::write(mem, 0x2000, 64, 0, key);
    LocalOffsetMeta meta = LocalOffsetMeta::read(mem, 0x2000);
    MacKey other{0x1234, 0x5679};
    EXPECT_FALSE(meta.verify(0x2000, other));
}

TEST_F(MetadataTest, LocalOffsetEraseInvalidates)
{
    LocalOffsetMeta::write(mem, 0x2000, 64, 0, key);
    LocalOffsetMeta::erase(mem, 0x2000);
    LocalOffsetMeta meta = LocalOffsetMeta::read(mem, 0x2000);
    EXPECT_FALSE(meta.verify(0x2000, key));
    EXPECT_NE(meta.magic, LocalOffsetMeta::magicValue);
}

TEST_F(MetadataTest, SubheapRoundTrip)
{
    SubheapBlockMeta meta;
    meta.slotsStart = 32;
    meta.slotsEnd = 65504;
    meta.slotSize = 96;
    meta.objectSize = 88;
    meta.layoutTable = 0xa000;
    meta.valid = true;
    SubheapBlockMeta::write(mem, 0x10000, 0, meta, key);

    SubheapBlockMeta got = SubheapBlockMeta::read(mem, 0x10000, 0);
    EXPECT_EQ(got.slotsStart, 32u);
    EXPECT_EQ(got.slotsEnd, 65504u);
    EXPECT_EQ(got.slotSize, 96u);
    EXPECT_EQ(got.objectSize, 88u);
    EXPECT_EQ(got.layoutTable, 0xa000u);
    EXPECT_TRUE(got.valid);
    EXPECT_TRUE(got.verify(0x10000, key));
}

TEST_F(MetadataTest, SubheapMacBindsBlockBase)
{
    SubheapBlockMeta meta;
    meta.slotsStart = 32;
    meta.slotsEnd = 1024;
    meta.slotSize = 64;
    meta.objectSize = 64;
    meta.valid = true;
    SubheapBlockMeta::write(mem, 0x10000, 0, meta, key);
    // Copy the 32 metadata bytes to another block base.
    for (unsigned i = 0; i < 4; ++i) {
        mem.store<uint64_t>(0x20000 + i * 8,
                            mem.load<uint64_t>(0x10000 + i * 8));
    }
    SubheapBlockMeta moved = SubheapBlockMeta::read(mem, 0x20000, 0);
    EXPECT_FALSE(moved.verify(0x20000, key));
}

TEST_F(MetadataTest, SubheapTamperDetected)
{
    SubheapBlockMeta meta;
    meta.slotsStart = 32;
    meta.slotsEnd = 1024;
    meta.slotSize = 64;
    meta.objectSize = 64;
    meta.valid = true;
    SubheapBlockMeta::write(mem, 0x10000, 0, meta, key);
    // Enlarge objectSize in memory: an attacker widening the bounds.
    uint64_t w1 = mem.load<uint64_t>(0x10008);
    mem.store<uint64_t>(0x10008, w1 | (0xffffULL << 32));
    EXPECT_FALSE(
        SubheapBlockMeta::read(mem, 0x10000, 0).verify(0x10000, key));
}

TEST_F(MetadataTest, GlobalRowRoundTripAndErase)
{
    GlobalTableRow row;
    row.base = 0x123456789a;
    row.size = 1 << 20;
    row.valid = true;
    GlobalTableRow::write(mem, layout::tableBase, 77, row);

    GlobalTableRow got = GlobalTableRow::read(mem, layout::tableBase,
                                              77);
    EXPECT_EQ(got.base, 0x123456789aULL);
    EXPECT_EQ(got.size, 1ULL << 20);
    EXPECT_TRUE(got.valid);

    GlobalTableRow::erase(mem, layout::tableBase, 77);
    EXPECT_FALSE(
        GlobalTableRow::read(mem, layout::tableBase, 77).valid);
}

TEST_F(MetadataTest, GlobalRowsDoNotOverlap)
{
    GlobalTableRow a{0x1000, 10, true};
    GlobalTableRow b{0x2000, 20, true};
    GlobalTableRow::write(mem, layout::tableBase, 0, a);
    GlobalTableRow::write(mem, layout::tableBase, 1, b);
    EXPECT_EQ(GlobalTableRow::read(mem, layout::tableBase, 0).base,
              0x1000u);
    EXPECT_EQ(GlobalTableRow::read(mem, layout::tableBase, 1).base,
              0x2000u);
}

} // namespace
} // namespace infat
