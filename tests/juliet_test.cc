/**
 * @file
 * Functional evaluation (paper §5.1): every bad case must trap, every
 * good case must pass, under both allocators — including the
 * intra-object cases that need subobject granularity. The baseline
 * must miss (almost) everything, confirming the defense is what does
 * the catching.
 */

#include <gtest/gtest.h>

#include "juliet/juliet.hh"

namespace infat {
namespace juliet {
namespace {

class JulietSuite : public ::testing::TestWithParam<AllocatorKind>
{
};

TEST_P(JulietSuite, AllBadDetectedNoFalsePositives)
{
    SuiteResult result = runSuite(GetParam());
    EXPECT_EQ(result.badMissed, 0u) << [&] {
        std::string missed;
        for (const CaseOutcome &o : result.outcomes) {
            if (o.testCase.bad && !o.trapped)
                missed += o.testCase.name() + " ";
        }
        return missed;
    }();
    EXPECT_EQ(result.falsePositives, 0u) << [&] {
        std::string fp;
        for (const CaseOutcome &o : result.outcomes) {
            if (!o.testCase.bad && o.trapped)
                fp += o.testCase.name() + ": " + o.trapDetail + "\n";
        }
        return fp;
    }();
    EXPECT_EQ(result.total, generateSuite().size());
    // The temporal cells outside the lock-and-key scheme's coverage
    // miss by design, each accounted under its documented bucket:
    // three register-held UAF cells (the stale key never reaches
    // promote) and one 16-reuse generation-wraparound cell.
    EXPECT_EQ(result.badExplained, 4u);
    ASSERT_EQ(result.missBuckets.count("register_held"), 1u);
    EXPECT_EQ(result.missBuckets.at("register_held"), 3u);
    ASSERT_EQ(result.missBuckets.count("generation_wraparound"), 1u);
    EXPECT_EQ(result.missBuckets.at("generation_wraparound"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Allocators, JulietSuite,
                         ::testing::Values(AllocatorKind::Wrapped,
                                           AllocatorKind::Subheap),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

TEST(JulietBaseline, MissesIntraObjectCases)
{
    // Without the defense, intra-object overflows never trap: the
    // corrupted byte is still inside the allocation.
    for (const TestCase &tc : generateSuite()) {
        if (!tc.bad || !tc.intraObject())
            continue;
        CaseOutcome outcome =
            runCase(tc, AllocatorKind::Wrapped, /*instrumented=*/false);
        EXPECT_FALSE(outcome.trapped) << tc.name();
    }
}

TEST(JulietSuiteShape, HasAllDimensions)
{
    auto suite = generateSuite();
    // 4 spatial flaws x 3 locations x 8 patterns, plus the 11
    // explicit temporal cells, each as a good/bad pair.
    EXPECT_EQ(suite.size(), 4u * 3u * 8u * 2u + 11u * 2u);
    size_t intra = 0;
    size_t temporal = 0;
    for (const TestCase &tc : suite) {
        intra += tc.intraObject();
        temporal += tc.temporal();
    }
    EXPECT_EQ(intra, 4u * 3u * 2u * 2u);
    EXPECT_EQ(temporal, 11u * 2u);
}

} // namespace
} // namespace juliet
} // namespace infat
