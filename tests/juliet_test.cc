/**
 * @file
 * Functional evaluation (paper §5.1): every bad case must trap, every
 * good case must pass, under both allocators — including the
 * intra-object cases that need subobject granularity. The baseline
 * must miss (almost) everything, confirming the defense is what does
 * the catching.
 */

#include <gtest/gtest.h>

#include "juliet/juliet.hh"

namespace infat {
namespace juliet {
namespace {

class JulietSuite : public ::testing::TestWithParam<AllocatorKind>
{
};

TEST_P(JulietSuite, AllBadDetectedNoFalsePositives)
{
    SuiteResult result = runSuite(GetParam());
    EXPECT_EQ(result.badMissed, 0u) << [&] {
        std::string missed;
        for (const CaseOutcome &o : result.outcomes) {
            if (o.testCase.bad && !o.trapped)
                missed += o.testCase.name() + " ";
        }
        return missed;
    }();
    EXPECT_EQ(result.falsePositives, 0u) << [&] {
        std::string fp;
        for (const CaseOutcome &o : result.outcomes) {
            if (!o.testCase.bad && o.trapped)
                fp += o.testCase.name() + ": " + o.trapDetail + "\n";
        }
        return fp;
    }();
    EXPECT_EQ(result.total, generateSuite().size());
}

INSTANTIATE_TEST_SUITE_P(Allocators, JulietSuite,
                         ::testing::Values(AllocatorKind::Wrapped,
                                           AllocatorKind::Subheap),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

TEST(JulietBaseline, MissesIntraObjectCases)
{
    // Without the defense, intra-object overflows never trap: the
    // corrupted byte is still inside the allocation.
    for (const TestCase &tc : generateSuite()) {
        if (!tc.bad || !tc.intraObject())
            continue;
        CaseOutcome outcome =
            runCase(tc, AllocatorKind::Wrapped, /*instrumented=*/false);
        EXPECT_FALSE(outcome.trapped) << tc.name();
    }
}

TEST(JulietSuiteShape, HasAllDimensions)
{
    auto suite = generateSuite();
    EXPECT_EQ(suite.size(), 4u * 3u * 8u * 2u);
    size_t intra = 0;
    for (const TestCase &tc : suite)
        intra += tc.intraObject();
    EXPECT_EQ(intra, 4u * 3u * 2u * 2u);
}

} // namespace
} // namespace juliet
} // namespace infat
