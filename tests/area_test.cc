/**
 * @file
 * Sanity tests for the structural area model (Figure 13 substrate).
 */

#include <gtest/gtest.h>

#include "ifp/area_model.hh"

namespace infat {
namespace {

TEST(AreaModel, TotalsNearPaper)
{
    AreaModel model;
    EXPECT_DOUBLE_EQ(model.vanillaTotal(), 37088.0);
    // The paper reports +22,173 LUTs (~60%); the structural model must
    // land in the same regime.
    double growth = model.growthTotal();
    EXPECT_GT(growth, 0.45 * model.vanillaTotal());
    EXPECT_LT(growth, 0.75 * model.vanillaTotal());
}

TEST(AreaModel, ExecuteStageDominatesGrowth)
{
    AreaModel model;
    double execute = 0, total = model.growthTotal();
    for (const StageArea &stage : model.stages()) {
        if (stage.stage.rfind("Execute", 0) == 0)
            execute += stage.growthLuts;
    }
    // Paper: ~62% of the increase is in the execute stage.
    EXPECT_GT(execute / total, 0.5);
}

TEST(AreaModel, WalkerIsLargestIfpComponent)
{
    AreaModel model;
    auto breakdown = model.ifpUnitBreakdown();
    ASSERT_EQ(breakdown.size(), 3u);
    double walker = breakdown[0].luts;
    double schemes = breakdown[1].luts;
    double unit_total = 0;
    for (const AreaItem &item : breakdown)
        unit_total += item.luts;
    // Paper: walker 36%, schemes 30% of the IFP unit.
    EXPECT_GT(walker / unit_total, 0.30);
    EXPECT_LT(walker / unit_total, 0.45);
    EXPECT_GT(schemes / unit_total, 0.22);
    EXPECT_LT(schemes / unit_total, 0.40);
}

TEST(AreaModel, DroppingWalkerSavesItsArea)
{
    AreaModel model;
    EXPECT_LT(model.growthWithoutWalker(), model.growthTotal());
    auto breakdown = model.ifpUnitBreakdown();
    EXPECT_DOUBLE_EQ(model.growthTotal() - model.growthWithoutWalker(),
                     breakdown[0].luts);
}

TEST(AreaModel, StageVanillaSumsToTotal)
{
    AreaModel model;
    double vanilla = 0;
    for (const StageArea &stage : model.stages())
        vanilla += stage.vanillaLuts;
    EXPECT_NEAR(vanilla, model.vanillaTotal(), 1.0);
}

} // namespace
} // namespace infat
