/**
 * @file
 * Registry invariants: all 18 paper workloads present, metadata
 * complete, every builder produces a verifiable module.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/verifier.hh"
#include "workloads/workload.hh"

namespace infat {
namespace workloads {
namespace {

TEST(Registry, PaperWorkloadSetComplete)
{
    const char *expected[] = {
        "bh",      "bisort",  "em3d",  "health",       "mst",
        "perimeter", "power", "treeadd", "tsp",        "voronoi",
        "anagram", "ft",      "ks",    "yacr2",        "wolfcrypt-dh",
        "sjeng",   "coremark", "bzip2"};
    EXPECT_EQ(all().size(), 18u);
    for (const char *name : expected)
        EXPECT_NE(byName(name), nullptr) << name;
    EXPECT_EQ(byName("doom"), nullptr);
}

TEST(Registry, MetadataComplete)
{
    std::set<std::string> names;
    for (const Workload &w : all()) {
        EXPECT_TRUE(names.insert(w.name).second) << "duplicate name";
        EXPECT_TRUE(std::string(w.suite) == "olden" ||
                    std::string(w.suite) == "ptrdist" ||
                    std::string(w.suite) == "other")
            << w.name;
        EXPECT_GT(std::string(w.notes).size(), 10u) << w.name;
        EXPECT_NE(w.build, nullptr) << w.name;
    }
}

TEST(Registry, EveryBuilderProducesVerifiableModule)
{
    for (const Workload &w : all()) {
        ir::Module m;
        w.build(m);
        auto problems = ir::verify(m);
        EXPECT_TRUE(problems.empty())
            << w.name << ": " << problems.front();
        EXPECT_NE(m.functionByName("main"), nullptr) << w.name;
    }
}

} // namespace
} // namespace workloads
} // namespace infat
