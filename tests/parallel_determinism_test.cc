/**
 * @file
 * Determinism of the parallel experiment harness: running the same
 * workload matrix serially and across a ThreadPool must produce
 * bit-identical simulated results — checksums, dynamic instruction and
 * cycle counts, and the full stat-snapshot JSON. Each harness run owns
 * a self-contained Machine, so any divergence means shared mutable
 * state leaked into the simulation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bench/bench_util.hh"
#include "workloads/harness.hh"

namespace infat {
namespace {

using bench::kMatrixConfigs;
using bench::matrixSlot;
using bench::poolThreadsForJobs;
using bench::runMatrices;
using bench::runMatrix;
using bench::WorkloadMatrix;
using workloads::Config;
using workloads::RunResult;
using workloads::Workload;

std::vector<const Workload *>
smokeSet()
{
    std::vector<const Workload *> ws;
    for (const char *name : {"treeadd", "power", "anagram"}) {
        const Workload *w = workloads::byName(name);
        EXPECT_NE(w, nullptr) << name;
        ws.push_back(w);
    }
    return ws;
}

TEST(ParallelDeterminism, PoolMatchesSerialBitForBit)
{
    std::vector<const Workload *> ws = smokeSet();

    std::vector<WorkloadMatrix> serial;
    for (const Workload *w : ws)
        serial.push_back(runMatrix(*w));

    ThreadPool pool(poolThreadsForJobs(3));
    std::vector<WorkloadMatrix> parallel = runMatrices(ws, pool);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].workload, parallel[i].workload)
            << "runMatrices reordered its results";
        for (Config config : kMatrixConfigs) {
            const RunResult &s = matrixSlot(serial[i], config);
            const RunResult &p = matrixSlot(parallel[i], config);
            SCOPED_TRACE(std::string(serial[i].workload->name) + "/" +
                         toString(config));
            EXPECT_EQ(s.checksum, p.checksum);
            EXPECT_EQ(s.instructions, p.instructions);
            EXPECT_EQ(s.cycles, p.cycles);
            EXPECT_EQ(s.promoteInstrs, p.promoteInstrs);
            EXPECT_EQ(s.l1dHits, p.l1dHits);
            EXPECT_EQ(s.l1dMisses, p.l1dMisses);
            EXPECT_EQ(s.residentBytes, p.residentBytes);
            // The full registry snapshot: every counter, histogram,
            // and formula in every group must agree.
            EXPECT_EQ(s.stats.toJson(), p.stats.toJson());
        }
    }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgree)
{
    // Two pooled executions of the same matrix must also agree with
    // each other (no run-to-run nondeterminism from scheduling).
    std::vector<const Workload *> ws = smokeSet();
    ThreadPool pool(poolThreadsForJobs(3));
    std::vector<WorkloadMatrix> a = runMatrices(ws, pool);
    std::vector<WorkloadMatrix> b = runMatrices(ws, pool);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        for (Config config : kMatrixConfigs) {
            EXPECT_EQ(matrixSlot(a[i], config).checksum,
                      matrixSlot(b[i], config).checksum);
            EXPECT_EQ(matrixSlot(a[i], config).stats.toJson(),
                      matrixSlot(b[i], config).stats.toJson());
        }
    }
}

TEST(ParallelDeterminism, RecordedRunsAreThreadSafe)
{
    // Harness run recording (the --stats-json export path) must accept
    // appends from pool workers without losing or tearing entries.
    workloads::clearRecordedRuns();
    workloads::setRunRecording(true);
    std::vector<const Workload *> ws = smokeSet();
    ThreadPool pool(poolThreadsForJobs(3));
    runMatrices(ws, pool);
    workloads::setRunRecording(false);
    std::vector<workloads::RecordedRun> runs =
        workloads::recordedRuns();
    EXPECT_EQ(runs.size(), ws.size() * bench::kNumMatrixConfigs);
    for (const workloads::RecordedRun &run : runs) {
        EXPECT_FALSE(run.workload.empty());
        EXPECT_FALSE(run.label.empty());
        EXPECT_FALSE(run.stats.toJson().empty());
    }
    workloads::clearRecordedRuns();
}

} // namespace
} // namespace infat
