/**
 * @file
 * Tests for the guest profiler (support/profile.hh): the exact
 * reconciliation invariants between the profiler's attribution and the
 * machine's simulated stat registry, engine-agreement of the hotness
 * counters, the no-perturbation guarantee (simulated results identical
 * with the profiler attached or not), stack sampling / collapsed-stack
 * export, and the "profile" JSON section contract.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/json.hh"
#include "support/profile.hh"
#include "workloads/harness.hh"
#include "workloads/workload.hh"

namespace infat {
namespace {

using namespace workloads;

struct ProfiledRun
{
    GuestProfiler profiler;
    RunResult result;
};

/** Run @p name instrumented (subheap) with a profiler attached. */
void
runProfiled(ProfiledRun &out, const char *name, bool superblocks,
            uint64_t sample_interval = 0)
{
    const Workload *workload = byName(name);
    ASSERT_NE(workload, nullptr);
    out.profiler.setSampleInterval(sample_interval);
    Observability obs;
    obs.profiler = &out.profiler;
    CustomRun custom;
    custom.superblocks = superblocks;
    out.result = runWorkloadCustom(*workload, custom, obs);
}

TEST(Profile, ReconciliationSuperblock)
{
    ProfiledRun run;
    runProfiled(run, "treeadd", /*superblocks=*/true);
    const RunResult &r = run.result;
    const GuestProfiler &p = run.profiler;

    // Every implicit check belongs to exactly one static check site.
    EXPECT_EQ(p.totalCheckExecutions(),
              r.stats.scalar("vm", "implicit_checks"));
    // Bounds spill/reload cycles reconcile exactly with the machine's
    // BndLdSt cycle class (the acceptance contract for the profile
    // section: per-site/function cycle attribution is not an estimate).
    EXPECT_EQ(p.totalBndCycles(),
              r.stats.scalar("vm", "cycles_bnd_ldst"));
    // Block self-cycles never exceed the cycle clock (the remainder is
    // partial blocks abandoned by traps — none here).
    EXPECT_GT(p.totalBlockCycles(), 0u);
    EXPECT_LE(p.totalBlockCycles(), r.cycles);
    EXPECT_LE(p.totalBlockInstructions(), r.instructions);
}

TEST(Profile, ReconciliationGeneral)
{
    ProfiledRun run;
    runProfiled(run, "treeadd", /*superblocks=*/false);
    const RunResult &r = run.result;
    const GuestProfiler &p = run.profiler;

    EXPECT_EQ(p.totalCheckExecutions(),
              r.stats.scalar("vm", "implicit_checks"));
    EXPECT_EQ(p.totalBndCycles(),
              r.stats.scalar("vm", "cycles_bnd_ldst"));
    EXPECT_GT(p.totalBlockCycles(), 0u);
    EXPECT_LE(p.totalBlockCycles(), r.cycles);
    // The general interpreter never elides checks host-side.
    EXPECT_EQ(p.totalCheckElided(), 0u);
}

TEST(Profile, EnginesAgreeOnAttribution)
{
    // The two engines attribute the same cycles to the same blocks and
    // the same checks to the same sites — the site identity model is
    // engine-independent, so the profile is comparable across tiers.
    ProfiledRun sb, gen;
    runProfiled(sb, "mst", /*superblocks=*/true);
    runProfiled(gen, "mst", /*superblocks=*/false);

    EXPECT_EQ(sb.result.cycles, gen.result.cycles);
    EXPECT_EQ(sb.profiler.totalBlockCycles(),
              gen.profiler.totalBlockCycles());
    EXPECT_EQ(sb.profiler.totalBlockInstructions(),
              gen.profiler.totalBlockInstructions());
    EXPECT_EQ(sb.profiler.totalCheckExecutions(),
              gen.profiler.totalCheckExecutions());
    EXPECT_EQ(sb.profiler.totalCheckCycles(),
              gen.profiler.totalCheckCycles());
    EXPECT_EQ(sb.profiler.totalBndCycles(),
              gen.profiler.totalBndCycles());
}

TEST(Profile, AttachmentDoesNotPerturbSimulation)
{
    const Workload *workload = byName("treeadd");
    ASSERT_NE(workload, nullptr);
    CustomRun custom;
    RunResult plain = runWorkloadCustom(*workload, custom);

    ProfiledRun profiled;
    runProfiled(profiled, "treeadd", /*superblocks=*/true,
                /*sample_interval=*/128);

    EXPECT_EQ(plain.checksum, profiled.result.checksum);
    EXPECT_EQ(plain.instructions, profiled.result.instructions);
    EXPECT_EQ(plain.cycles, profiled.result.cycles);
    // The profiler must not have disabled the superblock engine
    // (unlike tracer/oracle attachment).
    EXPECT_GT(profiled.result.stats.scalar("vm.superblock",
                                           "functions"),
              0u);
}

TEST(Profile, SamplingAndCollapsedStacks)
{
    ProfiledRun run;
    runProfiled(run, "treeadd", /*superblocks=*/true,
                /*sample_interval=*/64);
    EXPECT_GT(run.profiler.samples(), 0u);

    std::ostringstream os;
    run.profiler.writeCollapsed(os);
    std::string text = os.str();
    ASSERT_FALSE(text.empty());
    // Every collapsed stack is rooted at the entry function and ends
    // with a positive sample count.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.rfind("main", 0), 0u) << line;
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
}

TEST(Profile, SectionJsonContract)
{
    ProfiledRun run;
    runProfiled(run, "treeadd", /*superblocks=*/true,
                /*sample_interval=*/256);
    std::string section = run.profiler.sectionJson();

    std::string error;
    auto doc = jsonParse(section, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());

    const JsonValue *totals = doc->find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_EQ(totals->find("check_executions")->asUint(),
              run.profiler.totalCheckExecutions());
    EXPECT_EQ(totals->find("bnd_ldst_cycles")->asUint(),
              run.profiler.totalBndCycles());

    const JsonValue *blocks = doc->find("hot_blocks");
    ASSERT_NE(blocks, nullptr);
    ASSERT_TRUE(blocks->isArray());
    ASSERT_FALSE(blocks->arr.empty());
    // Ranked by cycles, descending.
    for (size_t i = 1; i < blocks->arr.size(); ++i)
        EXPECT_GE(blocks->arr[i - 1].find("cycles")->asUint(),
                  blocks->arr[i].find("cycles")->asUint());
    for (const JsonValue &b : blocks->arr) {
        EXPECT_NE(b.find("function"), nullptr);
        EXPECT_NE(b.find("block"), nullptr);
        EXPECT_NE(b.find("executions"), nullptr);
        EXPECT_NE(b.find("instructions"), nullptr);
    }

    const JsonValue *sites = doc->find("check_sites");
    ASSERT_NE(sites, nullptr);
    ASSERT_TRUE(sites->isArray());
    ASSERT_FALSE(sites->arr.empty());
    uint64_t listed = 0;
    for (const JsonValue &s : sites->arr) {
        EXPECT_NE(s.find("function"), nullptr);
        EXPECT_NE(s.find("block"), nullptr);
        EXPECT_NE(s.find("ip"), nullptr);
        EXPECT_NE(s.find("elided"), nullptr);
        listed += s.find("executions")->asUint();
    }
    // Top-K truncation drops sites, never counts: listed executions
    // can't exceed the totals, which cover everything.
    EXPECT_LE(listed, run.profiler.totalCheckExecutions());

    const JsonValue *functions = doc->find("functions");
    ASSERT_NE(functions, nullptr);
    ASSERT_TRUE(functions->isArray());
    uint64_t bnd = 0;
    for (const JsonValue &f : functions->arr)
        bnd += f.find("bnd_ldst_cycles")->asUint();
    EXPECT_EQ(bnd, run.profiler.totalBndCycles());
}

TEST(Profile, StatsJsonGainsProfileSection)
{
    ProfiledRun run;
    runProfiled(run, "treeadd", /*superblocks=*/true);
    std::ostringstream os;
    JsonWriter w(os);
    run.result.stats.writeJson(w);
    std::string error;
    auto doc = jsonParse(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue *profile = doc->find("profile");
    ASSERT_NE(profile, nullptr);
    EXPECT_TRUE(profile->isObject());
    EXPECT_NE(profile->find("totals"), nullptr);
}

} // namespace
} // namespace infat
