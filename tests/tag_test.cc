/**
 * @file
 * Unit tests for the pointer tag codec and single-cycle IFP ops.
 */

#include <gtest/gtest.h>

#include "ifp/ops.hh"
#include "ifp/tag.hh"

namespace infat {
namespace {

TEST(Tag, LegacyPointerIsCanonical)
{
    // Addresses are layout::addrBits (44) wide; bits above that hold
    // the generation key and the 16-bit tag.
    TaggedPtr p = TaggedPtr::legacy(0x0234'5678'9abcULL);
    EXPECT_EQ(p.raw(), 0x0234'5678'9abcULL);
    EXPECT_TRUE(p.isLegacy());
    EXPECT_FALSE(p.isPoisoned());
    EXPECT_EQ(p.addr(), 0x0234'5678'9abcULL);
    EXPECT_EQ(p.generation(), 0u);
}

TEST(Tag, GenerationKeyRoundTrip)
{
    TaggedPtr p = TaggedPtr::make(0xbeef0, Scheme::Subheap, 0x300);
    EXPECT_EQ(p.generation(), 0u);
    TaggedPtr q = p.withGeneration(11);
    EXPECT_EQ(q.generation(), 11u);
    // The key must not perturb the address, scheme, or tag fields.
    EXPECT_EQ(q.addr(), p.addr());
    EXPECT_EQ(q.scheme(), p.scheme());
    EXPECT_EQ(q.meta12(), p.meta12());
    EXPECT_EQ(q.poison(), Poison::Valid);
    // Keys wrap modulo 2^4: writing 16+3 stores 3.
    EXPECT_EQ(p.withGeneration(19).generation(), 3u);
}

TEST(Tag, TemporalStalePoisonIsSticky)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 0x41)
                      .withPoison(Poison::TemporalStale);
    EXPECT_TRUE(p.isPoisoned());
    EXPECT_EQ(p.poison(), Poison::TemporalStale);
    // Pointer arithmetic on a stale pointer keeps the stale poison
    // (same contract as Invalid: the trap fires at dereference).
    TaggedPtr q = ops::ifpAdd(p, 8, Bounds());
    EXPECT_EQ(q.poison(), Poison::TemporalStale);
}

TEST(Tag, FieldRoundTrip)
{
    TaggedPtr p = TaggedPtr::make(0xdeadbeef, Scheme::LocalOffset,
                                  (13ULL << 6) | 7);
    EXPECT_EQ(p.scheme(), Scheme::LocalOffset);
    EXPECT_EQ(p.localGranuleOffset(), 13u);
    EXPECT_EQ(p.localSubobjIndex(), 7u);
    EXPECT_EQ(p.addr(), 0xdeadbeefULL);
    EXPECT_EQ(p.poison(), Poison::Valid);

    TaggedPtr q = p.withPoison(Poison::OutOfBounds);
    EXPECT_EQ(q.poison(), Poison::OutOfBounds);
    EXPECT_EQ(q.scheme(), Scheme::LocalOffset);
    EXPECT_EQ(q.addr(), p.addr());
}

TEST(Tag, SubheapFields)
{
    TaggedPtr p = TaggedPtr::make(0x4000'0000, Scheme::Subheap,
                                  (5ULL << 8) | 200);
    EXPECT_EQ(p.subheapCtrlIndex(), 5u);
    EXPECT_EQ(p.subheapSubobjIndex(), 200u);
    EXPECT_EQ(p.subobjIndex(), 200u);
    EXPECT_EQ(p.maxSubobjIndex(), 255u);
}

TEST(Tag, GlobalTableFields)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::GlobalTable, 0xabc);
    EXPECT_EQ(p.globalTableIndex(), 0xabcu);
    EXPECT_EQ(p.subobjIndex(), 0u); // no subobject index in this scheme
    EXPECT_EQ(p.maxSubobjIndex(), 0u);
}

TEST(Tag, WithSubobjIndexRespectsScheme)
{
    TaggedPtr local = TaggedPtr::make(0x1000, Scheme::LocalOffset,
                                      13ULL << 6);
    EXPECT_EQ(local.withSubobjIndex(9).localSubobjIndex(), 9u);
    EXPECT_EQ(local.withSubobjIndex(9).localGranuleOffset(), 13u);

    TaggedPtr global = TaggedPtr::make(0x1000, Scheme::GlobalTable, 42);
    EXPECT_EQ(global.withSubobjIndex(9).globalTableIndex(), 42u);
}

TEST(Bounds, AccessSizeCheck)
{
    Bounds b(0x1000, 0x1010);
    EXPECT_TRUE(b.contains(0x1000, 16));
    EXPECT_TRUE(b.contains(0x100f, 1));
    EXPECT_FALSE(b.contains(0x100f, 2));
    EXPECT_FALSE(b.contains(0xfff, 1));
    EXPECT_FALSE(b.contains(0x1010, 1));
    EXPECT_TRUE(b.recoverable(0x1010)); // one past the end
    EXPECT_FALSE(b.recoverable(0x1011));
}

TEST(Bounds, ClearedPassesEverything)
{
    Bounds b = Bounds::cleared();
    EXPECT_FALSE(b.valid());
    EXPECT_TRUE(b.contains(0xdeadbeef, 1 << 20));
}

TEST(Ops, IfpAddUpdatesGranuleOffset)
{
    // Object at 0x1000, 64 bytes, metadata at 0x1040: a pointer at the
    // base has granule offset 4.
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4ULL << 6);
    Bounds b(0x1000, 0x1040);

    TaggedPtr q = ops::ifpAdd(p, 16, b);
    EXPECT_EQ(q.addr(), 0x1010ULL);
    EXPECT_EQ(q.localGranuleOffset(), 3u);
    EXPECT_EQ(q.poison(), Poison::Valid);

    // Back to base.
    TaggedPtr r = ops::ifpAdd(q, -16, b);
    EXPECT_EQ(r.localGranuleOffset(), 4u);

    // Sub-granule movement does not change the offset.
    TaggedPtr s = ops::ifpAdd(p, 8, b);
    EXPECT_EQ(s.localGranuleOffset(), 4u);
    EXPECT_EQ(s.addr(), 0x1008ULL);
}

TEST(Ops, IfpAddPoisonsOutOfBounds)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4ULL << 6);
    Bounds b(0x1000, 0x1040);

    TaggedPtr q = ops::ifpAdd(p, 0x40, b);
    EXPECT_EQ(q.poison(), Poison::OutOfBounds);

    // ...and recovers when arithmetic moves it back inside.
    TaggedPtr r = ops::ifpAdd(q, -0x40, b);
    EXPECT_EQ(r.poison(), Poison::Valid);
}

TEST(Ops, IfpAddInvalidatesWhenMetadataUnreachable)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4ULL << 6);
    // Moving far below the object underflows the 6-bit granule offset.
    TaggedPtr q = ops::ifpAdd(p, 0x10000, Bounds::cleared());
    EXPECT_EQ(q.poison(), Poison::Invalid);

    // Invalid is sticky.
    TaggedPtr r = ops::ifpAdd(q, -0x10000, Bounds::cleared());
    EXPECT_EQ(r.poison(), Poison::Invalid);
}

TEST(Ops, IfpIdxSetsRepresentableIndex)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 0);
    EXPECT_EQ(ops::ifpIdx(p, 63).localSubobjIndex(), 63u);
    EXPECT_EQ(ops::ifpIdx(p, 63).poison(), Poison::Valid);

    TaggedPtr s = TaggedPtr::make(0x4000'0000, Scheme::Subheap, 0);
    EXPECT_EQ(ops::ifpIdx(s, 255).subheapSubobjIndex(), 255u);
}

TEST(Ops, IfpIdxPoisonsUnrepresentableIndex)
{
    // An index the scheme's field cannot hold loses the subobject
    // identity; silently re-zeroing it would widen later narrowing to
    // the whole object (a false-negative source), so it poisons.
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 0);
    EXPECT_EQ(ops::ifpIdx(p, 64).poison(), Poison::Invalid);

    TaggedPtr s = TaggedPtr::make(0x4000'0000, Scheme::Subheap, 0);
    EXPECT_EQ(ops::ifpIdx(s, 256).poison(), Poison::Invalid);

    // Invalid is sticky: a later in-range ifpidx does not revive it.
    TaggedPtr q = ops::ifpIdx(p, 64);
    EXPECT_EQ(ops::ifpIdx(q, 1).poison(), Poison::Invalid);
}

TEST(Ops, IfpIdxNoOpForSchemesWithoutIndexField)
{
    // Legacy and global-table pointers have no subobject-index field;
    // any index, however large, leaves the pointer untouched.
    TaggedPtr legacy = TaggedPtr::legacy(0x1000);
    EXPECT_EQ(ops::ifpIdx(legacy, 7).raw(), legacy.raw());
    EXPECT_EQ(ops::ifpIdx(legacy, 1000).raw(), legacy.raw());

    TaggedPtr global = TaggedPtr::make(0x1000, Scheme::GlobalTable, 42);
    EXPECT_EQ(ops::ifpIdx(global, 7).raw(), global.raw());
    EXPECT_EQ(ops::ifpIdx(global, 1000).raw(), global.raw());
    EXPECT_EQ(ops::ifpIdx(global, 1000).globalTableIndex(), 42u);
}

TEST(Ops, IfpBndSaturatesAtTopOfCanonicalSpace)
{
    // An object at the very top of the 48-bit canonical space: the
    // upper bound must saturate at 2^48, not wrap below the lower.
    constexpr GuestAddr top = layout::addrMask + 1; // 2^48
    TaggedPtr p = TaggedPtr::legacy(top - 0x100);
    Bounds b = ops::ifpBnd(p, 0x100);
    EXPECT_EQ(b.lower(), top - 0x100);
    EXPECT_EQ(b.upper(), top);
    EXPECT_TRUE(b.contains(top - 0x100, 0x100));
    EXPECT_TRUE(b.contains(top - 8, 8));
    EXPECT_FALSE(b.contains(top - 8, 9));
    EXPECT_FALSE(b.contains(top - 0x101, 1));

    // Size overshooting the canonical space saturates instead of
    // producing upper < lower.
    Bounds c = ops::ifpBnd(p, 0x1000);
    EXPECT_EQ(c.upper(), top);
    EXPECT_TRUE(c.contains(top - 1, 1));

    // Full 64-bit wraparound (huge size) saturates too.
    Bounds d = ops::ifpBnd(p, ~0ULL);
    EXPECT_EQ(d.upper(), top);

    // Range form: 2^48 as an explicit upper limit must survive, not
    // canonicalize to 0.
    Bounds e = ops::ifpBndRange(top - 0x40, top);
    EXPECT_TRUE(e.contains(top - 0x40, 0x40));
    EXPECT_FALSE(e.contains(top - 0x40, 0x41));
    Bounds f = ops::ifpBndRange(top - 0x40, ~0ULL);
    EXPECT_EQ(f.upper(), top);
}

TEST(Ops, DemoteStripsTagToLegacy)
{
    TaggedPtr p = TaggedPtr::make(0xdead'beef, Scheme::LocalOffset,
                                  (13ULL << 6) | 7, Poison::OutOfBounds);
    TaggedPtr d = ops::demote(p);
    EXPECT_TRUE(d.isLegacy());
    EXPECT_EQ(d.raw(), 0xdead'beefULL);   // bits 63:48 all stripped
    EXPECT_EQ(d.addr(), p.addr());
    EXPECT_EQ(d.poison(), Poison::Valid);
    EXPECT_EQ(d.meta12(), 0u);

    // Round trip: demote of a legacy pointer is the identity, and
    // re-tagging a demoted pointer reproduces the original fields.
    EXPECT_EQ(ops::demote(d).raw(), d.raw());
    TaggedPtr re = TaggedPtr::make(d.addr(), Scheme::LocalOffset,
                                   (13ULL << 6) | 7);
    EXPECT_EQ(re.localGranuleOffset(), 13u);
    EXPECT_EQ(re.localSubobjIndex(), 7u);
    EXPECT_EQ(re.addr(), p.addr());
}

TEST(Ops, IfpAddNegativeDeltaAcrossGranules)
{
    // Object at 0x1000, metadata granule offset 4 at the base.
    TaggedPtr p = TaggedPtr::make(0x1040, Scheme::LocalOffset, 0);
    Bounds b(0x1000, 0x1040);

    // Negative delta moving down: granule offset grows by the number
    // of granule boundaries crossed.
    TaggedPtr q = ops::ifpAdd(p, -0x40, b);
    EXPECT_EQ(q.addr(), 0x1000ULL);
    EXPECT_EQ(q.localGranuleOffset(), 4u);
    EXPECT_EQ(q.poison(), Poison::Valid);

    // Negative sub-granule movement that does not cross a boundary
    // leaves the offset alone.
    TaggedPtr r = ops::ifpAdd(q, 0x18, b);
    EXPECT_EQ(r.localGranuleOffset(), 3u);
    TaggedPtr s = ops::ifpAdd(r, -0x8, b);
    EXPECT_EQ(s.addr(), 0x1010ULL);
    EXPECT_EQ(s.localGranuleOffset(), 3u);

    // Negative movement that crosses into the granule below.
    TaggedPtr t = ops::ifpAdd(s, -0x1, b);
    EXPECT_EQ(t.addr(), 0x100fULL);
    EXPECT_EQ(t.localGranuleOffset(), 4u);
}

TEST(Ops, IfpAddMultiGranuleCrossings)
{
    // 4-granule jumps in one instruction, both directions.
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 8ULL << 6);
    Bounds b(0x1000, 0x1080);

    TaggedPtr q = ops::ifpAdd(p, 0x40, b);
    EXPECT_EQ(q.localGranuleOffset(), 4u);
    TaggedPtr r = ops::ifpAdd(q, -0x40, b);
    EXPECT_EQ(r.localGranuleOffset(), 8u);
    EXPECT_EQ(r.raw(), p.withPoison(Poison::Valid).raw());
}

TEST(Ops, IfpAddOutOfBoundsRecoversWithBounds)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 8ULL << 6);
    Bounds b(0x1000, 0x1040);

    // Walk out below the object, then back in: OutOfBounds -> Valid.
    TaggedPtr below = ops::ifpAdd(p, -0x10, b);
    EXPECT_EQ(below.poison(), Poison::OutOfBounds);
    EXPECT_EQ(below.localGranuleOffset(), 9u);
    TaggedPtr back = ops::ifpAdd(below, 0x10, b);
    EXPECT_EQ(back.poison(), Poison::Valid);
    EXPECT_EQ(back.localGranuleOffset(), 8u);

    // Without bounds in the IFPR, poison cannot recover: it is only
    // re-evaluated when bounds are present.
    TaggedPtr above = ops::ifpAdd(p, 0x40, b);
    EXPECT_EQ(above.poison(), Poison::OutOfBounds);
    EXPECT_EQ(above.localGranuleOffset(), 4u);
    TaggedPtr still = ops::ifpAdd(above, 0x10, Bounds::cleared());
    EXPECT_EQ(still.poison(), Poison::OutOfBounds);
    EXPECT_EQ(still.localGranuleOffset(), 3u);
    TaggedPtr healed = ops::ifpAdd(still, -0x50, b);
    EXPECT_EQ(healed.poison(), Poison::Valid);
    EXPECT_EQ(healed.addr(), 0x1000ULL);
    EXPECT_EQ(healed.localGranuleOffset(), 8u);
}

TEST(Ops, IfpChkPoisonsOnFailure)
{
    TaggedPtr p = TaggedPtr::legacy(0x2000);
    Bounds b(0x1000, 0x1040);
    EXPECT_EQ(ops::ifpChk(p, b, 8).poison(), Poison::OutOfBounds);
    EXPECT_EQ(ops::ifpChk(TaggedPtr::legacy(0x1000), b, 8).poison(),
              Poison::Valid);
    // Cleared bounds: unchecked.
    EXPECT_EQ(ops::ifpChk(p, Bounds::cleared(), 8).poison(),
              Poison::Valid);
}

} // namespace
} // namespace infat
