/**
 * @file
 * Unit tests for the pointer tag codec and single-cycle IFP ops.
 */

#include <gtest/gtest.h>

#include "ifp/ops.hh"
#include "ifp/tag.hh"

namespace infat {
namespace {

TEST(Tag, LegacyPointerIsCanonical)
{
    TaggedPtr p = TaggedPtr::legacy(0x1234'5678'9abcULL);
    EXPECT_EQ(p.raw(), 0x1234'5678'9abcULL);
    EXPECT_TRUE(p.isLegacy());
    EXPECT_FALSE(p.isPoisoned());
    EXPECT_EQ(p.addr(), 0x1234'5678'9abcULL);
}

TEST(Tag, FieldRoundTrip)
{
    TaggedPtr p = TaggedPtr::make(0xdeadbeef, Scheme::LocalOffset,
                                  (13ULL << 6) | 7);
    EXPECT_EQ(p.scheme(), Scheme::LocalOffset);
    EXPECT_EQ(p.localGranuleOffset(), 13u);
    EXPECT_EQ(p.localSubobjIndex(), 7u);
    EXPECT_EQ(p.addr(), 0xdeadbeefULL);
    EXPECT_EQ(p.poison(), Poison::Valid);

    TaggedPtr q = p.withPoison(Poison::OutOfBounds);
    EXPECT_EQ(q.poison(), Poison::OutOfBounds);
    EXPECT_EQ(q.scheme(), Scheme::LocalOffset);
    EXPECT_EQ(q.addr(), p.addr());
}

TEST(Tag, SubheapFields)
{
    TaggedPtr p = TaggedPtr::make(0x4000'0000, Scheme::Subheap,
                                  (5ULL << 8) | 200);
    EXPECT_EQ(p.subheapCtrlIndex(), 5u);
    EXPECT_EQ(p.subheapSubobjIndex(), 200u);
    EXPECT_EQ(p.subobjIndex(), 200u);
    EXPECT_EQ(p.maxSubobjIndex(), 255u);
}

TEST(Tag, GlobalTableFields)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::GlobalTable, 0xabc);
    EXPECT_EQ(p.globalTableIndex(), 0xabcu);
    EXPECT_EQ(p.subobjIndex(), 0u); // no subobject index in this scheme
    EXPECT_EQ(p.maxSubobjIndex(), 0u);
}

TEST(Tag, WithSubobjIndexRespectsScheme)
{
    TaggedPtr local = TaggedPtr::make(0x1000, Scheme::LocalOffset,
                                      13ULL << 6);
    EXPECT_EQ(local.withSubobjIndex(9).localSubobjIndex(), 9u);
    EXPECT_EQ(local.withSubobjIndex(9).localGranuleOffset(), 13u);

    TaggedPtr global = TaggedPtr::make(0x1000, Scheme::GlobalTable, 42);
    EXPECT_EQ(global.withSubobjIndex(9).globalTableIndex(), 42u);
}

TEST(Bounds, AccessSizeCheck)
{
    Bounds b(0x1000, 0x1010);
    EXPECT_TRUE(b.contains(0x1000, 16));
    EXPECT_TRUE(b.contains(0x100f, 1));
    EXPECT_FALSE(b.contains(0x100f, 2));
    EXPECT_FALSE(b.contains(0xfff, 1));
    EXPECT_FALSE(b.contains(0x1010, 1));
    EXPECT_TRUE(b.recoverable(0x1010)); // one past the end
    EXPECT_FALSE(b.recoverable(0x1011));
}

TEST(Bounds, ClearedPassesEverything)
{
    Bounds b = Bounds::cleared();
    EXPECT_FALSE(b.valid());
    EXPECT_TRUE(b.contains(0xdeadbeef, 1 << 20));
}

TEST(Ops, IfpAddUpdatesGranuleOffset)
{
    // Object at 0x1000, 64 bytes, metadata at 0x1040: a pointer at the
    // base has granule offset 4.
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4ULL << 6);
    Bounds b(0x1000, 0x1040);

    TaggedPtr q = ops::ifpAdd(p, 16, b);
    EXPECT_EQ(q.addr(), 0x1010ULL);
    EXPECT_EQ(q.localGranuleOffset(), 3u);
    EXPECT_EQ(q.poison(), Poison::Valid);

    // Back to base.
    TaggedPtr r = ops::ifpAdd(q, -16, b);
    EXPECT_EQ(r.localGranuleOffset(), 4u);

    // Sub-granule movement does not change the offset.
    TaggedPtr s = ops::ifpAdd(p, 8, b);
    EXPECT_EQ(s.localGranuleOffset(), 4u);
    EXPECT_EQ(s.addr(), 0x1008ULL);
}

TEST(Ops, IfpAddPoisonsOutOfBounds)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4ULL << 6);
    Bounds b(0x1000, 0x1040);

    TaggedPtr q = ops::ifpAdd(p, 0x40, b);
    EXPECT_EQ(q.poison(), Poison::OutOfBounds);

    // ...and recovers when arithmetic moves it back inside.
    TaggedPtr r = ops::ifpAdd(q, -0x40, b);
    EXPECT_EQ(r.poison(), Poison::Valid);
}

TEST(Ops, IfpAddInvalidatesWhenMetadataUnreachable)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4ULL << 6);
    // Moving far below the object underflows the 6-bit granule offset.
    TaggedPtr q = ops::ifpAdd(p, 0x10000, Bounds::cleared());
    EXPECT_EQ(q.poison(), Poison::Invalid);

    // Invalid is sticky.
    TaggedPtr r = ops::ifpAdd(q, -0x10000, Bounds::cleared());
    EXPECT_EQ(r.poison(), Poison::Invalid);
}

TEST(Ops, IfpIdxClampsUnrepresentableIndex)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 0);
    EXPECT_EQ(ops::ifpIdx(p, 63).localSubobjIndex(), 63u);
    EXPECT_EQ(ops::ifpIdx(p, 64).localSubobjIndex(), 0u);
}

TEST(Ops, IfpChkPoisonsOnFailure)
{
    TaggedPtr p = TaggedPtr::legacy(0x2000);
    Bounds b(0x1000, 0x1040);
    EXPECT_EQ(ops::ifpChk(p, b, 8).poison(), Poison::OutOfBounds);
    EXPECT_EQ(ops::ifpChk(TaggedPtr::legacy(0x1000), b, 8).poison(),
              Poison::Valid);
    // Cleared bounds: unchecked.
    EXPECT_EQ(ops::ifpChk(p, Bounds::cleared(), 8).poison(),
              Poison::Valid);
}

} // namespace
} // namespace infat
