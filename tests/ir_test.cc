/**
 * @file
 * Unit tests for the IR: type layout (C ABI), builder, verifier,
 * printer, and the structured control-flow DSL.
 */

#include <gtest/gtest.h>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"
#include "workloads/dsl.hh"

namespace infat {
namespace {

using namespace ir;
using workloads::ForLoop;
using workloads::IfElse;
using workloads::WhileLoop;

TEST(Types, StructLayoutFollowsCAbi)
{
    Module m;
    TypeContext &tc = m.types();
    // { i8; i64; i32; i8 } -> offsets 0, 8, 16, 20; size 24 (padded).
    StructType *s = tc.createStruct(
        "S", {tc.i8(), tc.i64(), tc.i32(), tc.i8()});
    EXPECT_EQ(s->fieldOffset(0), 0u);
    EXPECT_EQ(s->fieldOffset(1), 8u);
    EXPECT_EQ(s->fieldOffset(2), 16u);
    EXPECT_EQ(s->fieldOffset(3), 20u);
    EXPECT_EQ(s->size(), 24u);
    EXPECT_EQ(s->align(), 8u);
}

TEST(Types, ArraysAndPointers)
{
    Module m;
    TypeContext &tc = m.types();
    const Type *arr = tc.array(tc.i32(), 5);
    EXPECT_EQ(arr->size(), 20u);
    EXPECT_EQ(arr->align(), 4u);
    EXPECT_EQ(tc.ptr(arr)->size(), 8u);
    // Pointer types are interned.
    EXPECT_EQ(tc.ptr(arr), tc.ptr(arr));
    EXPECT_EQ(tc.array(tc.i32(), 5), arr);
}

TEST(Types, RecursiveStructViaOpaqueBody)
{
    Module m;
    TypeContext &tc = m.types();
    StructType *node = tc.createStruct("Node");
    EXPECT_TRUE(node->isOpaqueStruct());
    node->setBody({tc.i64(), tc.ptr(node)});
    EXPECT_EQ(node->size(), 16u);
}

TEST(Verifier, CatchesUnterminatedBlock)
{
    Module m;
    FunctionBuilder fb(m, "f", {}, m.types().i64());
    fb.iconst(1); // no terminator
    auto problems = verify(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("not terminated"), std::string::npos);
}

TEST(Verifier, CatchesBadBranchTarget)
{
    Module m;
    FunctionBuilder fb(m, "f", {}, m.types().voidTy());
    Instr jmp;
    jmp.op = Opcode::Jmp;
    jmp.target0 = 99;
    fb.function()->block(0).instrs.push_back(jmp);
    auto problems = verify(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("out of range"), std::string::npos);
}

TEST(Verifier, CatchesArityMismatch)
{
    Module m;
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "callee", {tc.i64(), tc.i64()}, tc.i64());
        fb.ret(fb.arg(0));
    }
    {
        FunctionBuilder fb(m, "caller", {}, tc.i64());
        Instr call;
        call.op = Opcode::Call;
        call.callee = m.functionByName("callee")->id();
        call.dst = fb.function()->newReg();
        fb.function()->block(0).instrs.push_back(call);
        Instr ret;
        ret.op = Opcode::Ret;
        ret.a = Operand::reg(call.dst);
        fb.function()->block(0).instrs.push_back(ret);
    }
    auto problems = verify(m);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("arity"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormedAndInstrumentedModules)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value obj = fb.mallocTyped(s);
    fb.storeField(obj, 0, fb.iconst(1));
    Value v = fb.loadField(obj, 0);
    fb.freePtr(obj);
    fb.ret(v);
    EXPECT_TRUE(verify(m).empty());
    instrumentModule(m);
    EXPECT_TRUE(verify(m).empty());
}

TEST(Printer, RendersInstrumentedOps)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    GlobalId g = m.addGlobal("slot", tc.ptr(s));
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value obj = fb.mallocTyped(s);
    fb.store(obj, fb.globalAddr(g));
    Value back = fb.load(fb.globalAddr(g));
    fb.ret(fb.loadField(back, 1));
    instrumentModule(m);
    std::string text = print(m);
    EXPECT_NE(text.find("ifp.malloc"), std::string::npos);
    EXPECT_NE(text.find("ifp.promote"), std::string::npos);
    EXPECT_NE(text.find("ifp.add"), std::string::npos);
    EXPECT_NE(text.find("@slot"), std::string::npos);
}

/** The DSL helpers must produce correct control flow end-to-end. */
TEST(Dsl, ForWhileIfSemantics)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    // sum of odd numbers below 100, computed awkwardly.
    Value total = fb.var(tc.i64());
    fb.assign(total, fb.iconst(0));
    ForLoop i(fb, fb.iconst(0), fb.iconst(100));
    IfElse odd(fb, fb.and_(i.index(), fb.iconst(1)));
    fb.assign(total, fb.add(total, i.index()));
    odd.otherwise();
    // even: subtract one then re-add it (exercises the else side).
    fb.assign(total, fb.addImm(total, -1));
    fb.assign(total, fb.addImm(total, 1));
    odd.finish();
    i.finish();
    // while loop: count down.
    Value n = fb.var(tc.i64());
    fb.assign(n, fb.iconst(10));
    WhileLoop w(fb);
    w.test(fb.sgt(n, fb.iconst(0)));
    fb.assign(n, fb.addImm(n, -1));
    fb.assign(total, fb.addImm(total, 1));
    w.finish();
    fb.ret(total);

    verifyOrDie(m);
    Machine machine(m, nullptr, {});
    installLibc(machine);
    EXPECT_EQ(machine.run(), 2500u + 10u);
}

TEST(Dsl, ForLoopBreak)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value total = fb.var(tc.i64());
    fb.assign(total, fb.iconst(0));
    ForLoop i(fb, fb.iconst(0), fb.iconst(1000));
    IfElse stop(fb, fb.eq(i.index(), fb.iconst(5)));
    fb.jmp(i.breakTarget());
    stop.finish();
    fb.assign(total, fb.add(total, i.index()));
    i.finish();
    fb.ret(total); // 0+1+2+3+4
    Machine machine(m, nullptr, {});
    installLibc(machine);
    EXPECT_EQ(machine.run(), 10u);
}

} // namespace
} // namespace infat
