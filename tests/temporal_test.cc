/**
 * @file
 * Temporal-safety boundary tests plus the check-placement ablation
 * knobs.
 *
 * The paper's base design (§3) "cannot detect temporal memory errors
 * beyond those that invalidate object metadata"; this repo extends it
 * with a tag-versioned lock-and-key scheme (DESIGN.md, temporal
 * section): a 4-bit generation key in pointer bits 47:44 compared at
 * promote against a per-allocation lock that every free bumps. These
 * tests pin the new boundary: a use-after-free into a recycled slot
 * IS now caught (the key no longer matches the bumped lock), while a
 * pointer exactly 16 incarnations stale aliases the live key again —
 * the documented residual window. Disabling temporalEnabled restores
 * the old (metadata-invalidation-only) boundary.
 */

#include <gtest/gtest.h>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"
#include "workloads/harness.hh"

namespace infat {
namespace {

using namespace ir;

/**
 * main: p = malloc; store p to a global; free p; [optionally allocate
 * a same-size replacement]; reload p (promote) and dereference.
 */
void
buildUseAfterFree(Module &m, bool reallocate)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    GlobalId slot = m.addGlobal("slot", tc.ptr(tc.i64()));
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value p = fb.mallocTyped(tc.i64(), fb.iconst(8));
    fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
    fb.store(p, fb.globalAddr(slot));
    fb.freePtr(p);
    if (reallocate) {
        Value q = fb.mallocTyped(tc.i64(), fb.iconst(8));
        fb.store(fb.iconst(9), fb.elemPtr(q, int64_t{0}));
    }
    Value dangling = fb.load(fb.globalAddr(slot));
    fb.ret(fb.load(fb.elemPtr(dangling, int64_t{0})));
}

TEST(Temporal, UseAfterFreeCaught)
{
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildUseAfterFree(m, /*reallocate=*/false);
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        // Wrapped: the free erased the local-offset metadata, so the
        // promote fails the magic check (spatial-style detection).
        // Subheap: the warm block keeps valid *block* metadata but the
        // free bumped the slot lock, so the dangling key fails the
        // comparison — the temporal trap.
        try {
            machine.run();
            FAIL() << "use-after-free missed (" << toString(kind) << ")";
        } catch (const GuestTrap &trap) {
            EXPECT_TRUE(trap.isSafetyViolation()) << trap.what();
            if (kind == AllocatorKind::Subheap)
                EXPECT_EQ(trap.kind(), TrapKind::TemporalViolation)
                    << trap.what();
        }
    }
}

TEST(Temporal, UseAfterFreeIntoRecycledSlotDetected)
{
    // Both allocators recycle the freed slot for the same-size
    // replacement, so before tag versioning the dangling access was
    // indistinguishable from a valid one (the old by-design gap).
    // The bumped generation lock now catches it at promote.
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildUseAfterFree(m, /*reallocate=*/true);
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        try {
            machine.run();
            FAIL() << "recycled-slot use-after-free missed ("
                   << toString(kind) << ")";
        } catch (const GuestTrap &trap) {
            EXPECT_EQ(trap.kind(), TrapKind::TemporalViolation)
                << trap.what();
        }
    }
}

TEST(Temporal, RecycledSlotUndetectedWhenTemporalDisabled)
{
    // The ablation knob restores the paper's base-design boundary:
    // with temporalEnabled off the recycled-slot UAF reads the
    // replacement object's value, exactly as before this scheme.
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildUseAfterFree(m, /*reallocate=*/true);
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        config.ifp.temporalEnabled = false;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        EXPECT_EQ(machine.run(), 9u) << toString(kind);
    }
}

/** main: p = malloc(8); free(p); free(p) — the classic CWE-415. */
void
buildDoubleFree(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value p = fb.mallocTyped(tc.i64(), fb.iconst(8));
    fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
    fb.freePtr(p);
    fb.freePtr(p);
    fb.ret(fb.iconst(0));
}

TEST(Temporal, DoubleFreeTrapsInGuest)
{
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildDoubleFree(m);
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        try {
            machine.run();
            FAIL() << "double free missed (" << toString(kind) << ")";
        } catch (const GuestTrap &trap) {
            EXPECT_EQ(trap.kind(), TrapKind::InvalidFree)
                << trap.what();
        }
    }
}

TEST(Temporal, BaselineSurvivesDoubleFree)
{
    // Uninstrumented run: the glibc model absorbs the invalid free
    // (real glibc corrupts the arena; either way the process does not
    // fail fast), so baseline Juliet bad cases produce a checksum
    // instead of killing the simulation host.
    Module m;
    buildDoubleFree(m);
    VmConfig config;
    Machine machine(m, nullptr, config);
    installLibc(machine);
    EXPECT_EQ(machine.run(), 0u);
}

void
buildOobProgram(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(8));
    fb.store(fb.iconst(1), fb.elemPtr(buf, int64_t{8}));
    fb.ret(fb.iconst(0));
}

TEST(CheckPlacement, ExplicitChecksDetectWithoutImplicit)
{
    Module m;
    buildOobProgram(m);
    InstrumentOptions options;
    options.explicitChecks = true;
    InstrumentResult inst = instrumentModule(m, options);
    VmConfig config;
    config.instrumented = true;
    config.implicitChecks = false;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    try {
        machine.run();
        FAIL() << "explicit ifpchk missed the overflow";
    } catch (const GuestTrap &trap) {
        // ifpchk poisoned the pointer; the dereference trapped.
        EXPECT_EQ(trap.kind(), TrapKind::PoisonedAccess);
    }
}

TEST(CheckPlacement, NoChecksAtAllMissesInBoundsObjectOverflow)
{
    // Sanity check on the ablation plumbing: with neither implicit
    // nor explicit checks, only the poison bits of wild pointers can
    // trap; a one-past overflow into mapped memory is missed... except
    // that ifpadd itself poisons the out-of-bounds result when bounds
    // are attached, which still catches it. Verify the strongest
    // statement that actually holds: detection does not *regress*
    // when checks are re-enabled.
    Module m;
    buildOobProgram(m);
    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    config.implicitChecks = false;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    EXPECT_THROW(machine.run(), GuestTrap);
}

TEST(Superscalar, CyclesNeverBelowBaselineModel)
{
    using namespace workloads;
    RunResult base = runWorkload("treeadd", Config::Baseline);
    CustomRun asic;
    asic.superscalar = true;
    RunResult r = runWorkloadCustom(*byName("treeadd"), asic);
    EXPECT_EQ(r.checksum, base.checksum);
    CustomRun fpga;
    RunResult r_fpga = runWorkloadCustom(*byName("treeadd"), fpga);
    EXPECT_LE(r.cycles, r_fpga.cycles);
    EXPECT_EQ(r.instructions, r_fpga.instructions);
}

} // namespace
} // namespace infat
