/**
 * @file
 * Temporal-safety boundary (paper §3: "In-Fat Pointer cannot detect
 * temporal memory errors beyond those that invalidate object
 * metadata") plus the check-placement ablation knobs.
 *
 * These tests pin down exactly where the protection boundary lies:
 * a use-after-free whose metadata was erased is caught at the next
 * promote; a use-after-free into a recycled slot of the same size
 * class is NOT (by design); and the explicit-ifpchk configuration
 * detects everything the implicit one does.
 */

#include <gtest/gtest.h>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"
#include "workloads/harness.hh"

namespace infat {
namespace {

using namespace ir;

/**
 * main: p = malloc; store p to a global; free p; [optionally allocate
 * a same-size replacement]; reload p (promote) and dereference.
 */
void
buildUseAfterFree(Module &m, bool reallocate)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    GlobalId slot = m.addGlobal("slot", tc.ptr(tc.i64()));
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value p = fb.mallocTyped(tc.i64(), fb.iconst(8));
    fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
    fb.store(p, fb.globalAddr(slot));
    fb.freePtr(p);
    if (reallocate) {
        Value q = fb.mallocTyped(tc.i64(), fb.iconst(8));
        fb.store(fb.iconst(9), fb.elemPtr(q, int64_t{0}));
    }
    Value dangling = fb.load(fb.globalAddr(slot));
    fb.ret(fb.load(fb.elemPtr(dangling, int64_t{0})));
}

TEST(Temporal, UseAfterFreeCaughtWhenMetadataInvalidated)
{
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildUseAfterFree(m, /*reallocate=*/false);
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        // The free erased the local-offset metadata (wrapped). For
        // the subheap the warm block keeps valid *block* metadata, so
        // the dangling pointer still resolves to a slot — the known
        // detection gap.
        if (kind == AllocatorKind::Wrapped) {
            EXPECT_THROW(machine.run(), GuestTrap);
        } else {
            EXPECT_NO_THROW(machine.run());
        }
    }
}

TEST(Temporal, UseAfterFreeIntoRecycledSlotUndetected)
{
    // Both allocators: once the slot is live again with a same-size
    // object, the dangling access is indistinguishable — the paper's
    // documented non-goal.
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildUseAfterFree(m, /*reallocate=*/true);
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        EXPECT_EQ(machine.run(), 9u) << toString(kind);
    }
}

void
buildOobProgram(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(8));
    fb.store(fb.iconst(1), fb.elemPtr(buf, int64_t{8}));
    fb.ret(fb.iconst(0));
}

TEST(CheckPlacement, ExplicitChecksDetectWithoutImplicit)
{
    Module m;
    buildOobProgram(m);
    InstrumentOptions options;
    options.explicitChecks = true;
    InstrumentResult inst = instrumentModule(m, options);
    VmConfig config;
    config.instrumented = true;
    config.implicitChecks = false;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    try {
        machine.run();
        FAIL() << "explicit ifpchk missed the overflow";
    } catch (const GuestTrap &trap) {
        // ifpchk poisoned the pointer; the dereference trapped.
        EXPECT_EQ(trap.kind(), TrapKind::PoisonedAccess);
    }
}

TEST(CheckPlacement, NoChecksAtAllMissesInBoundsObjectOverflow)
{
    // Sanity check on the ablation plumbing: with neither implicit
    // nor explicit checks, only the poison bits of wild pointers can
    // trap; a one-past overflow into mapped memory is missed... except
    // that ifpadd itself poisons the out-of-bounds result when bounds
    // are attached, which still catches it. Verify the strongest
    // statement that actually holds: detection does not *regress*
    // when checks are re-enabled.
    Module m;
    buildOobProgram(m);
    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    config.implicitChecks = false;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    EXPECT_THROW(machine.run(), GuestTrap);
}

TEST(Superscalar, CyclesNeverBelowBaselineModel)
{
    using namespace workloads;
    RunResult base = runWorkload("treeadd", Config::Baseline);
    CustomRun asic;
    asic.superscalar = true;
    RunResult r = runWorkloadCustom(*byName("treeadd"), asic);
    EXPECT_EQ(r.checksum, base.checksum);
    CustomRun fpga;
    RunResult r_fpga = runWorkloadCustom(*byName("treeadd"), fpga);
    EXPECT_LE(r.cycles, r_fpga.cycles);
    EXPECT_EQ(r.instructions, r_fpga.instructions);
}

} // namespace
} // namespace infat
