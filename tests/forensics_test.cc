/**
 * @file
 * Tests for trap forensics (vm/forensics.hh): every spatial trap from
 * the Juliet suite carries a structured report with a symbolized guest
 * stack, the faulting pointer decoded per scheme, and — with
 * VmConfig::forensics on, as the suite runner enables — a
 * nearest-object diagnosis naming the allocation site and the byte
 * distance by which the access escaped the object.
 */

#include <gtest/gtest.h>

#include "juliet/juliet.hh"
#include "support/json.hh"
#include "vm/forensics.hh"

namespace infat {
namespace {

using namespace juliet;

CaseOutcome
runBad(Flaw flaw, Location location, Pattern pattern,
       AllocatorKind allocator)
{
    TestCase test_case{flaw, location, pattern, /*bad=*/true};
    CaseOutcome outcome = runCase(test_case, allocator);
    EXPECT_TRUE(outcome.trapped) << test_case.name();
    EXPECT_TRUE(outcome.correct) << test_case.name();
    return outcome;
}

TEST(Forensics, HeapOverflowReport)
{
    CaseOutcome outcome =
        runBad(Flaw::Overflow, Location::Heap, Pattern::DirectIndex,
               AllocatorKind::Subheap);
    ASSERT_NE(outcome.report, nullptr);
    const TrapReport &report = *outcome.report;

    // The trap itself.
    EXPECT_TRUE(report.kind == "bounds violation" ||
                report.kind == "poisoned access")
        << report.kind;
    EXPECT_EQ(report.detail, outcome.trapDetail);

    // Symbolized guest stack, outermost first: main performs the
    // access directly in this pattern.
    ASSERT_FALSE(report.stack.empty());
    EXPECT_EQ(report.stack.front().function, "main");

    // The faulting pointer is fully decoded.
    ASSERT_TRUE(report.faultKnown);
    EXPECT_GT(report.accessSize, 0u);
    EXPECT_FALSE(report.poison.empty());
    EXPECT_FALSE(report.scheme.empty());
    EXPECT_NE(report.scheme, "?");

    // Nearest-object diagnosis: the overflow is past the end of the
    // ifp-heap buffer, by exactly one element (Juliet's buf[len]).
    ASSERT_TRUE(report.object.present);
    EXPECT_EQ(toString(report.object.kind),
              std::string("ifp-heap"));
    EXPECT_EQ(report.object.relation, "overflow");
    EXPECT_GT(report.object.distance, 0u);
    EXPECT_LE(report.object.distance, report.accessSize);
    // Allocation site: the buffer is allocated in main.
    ASSERT_TRUE(report.object.siteKnown);
    EXPECT_EQ(report.object.siteFunction, "main");
}

TEST(Forensics, StackUnderwriteReport)
{
    CaseOutcome outcome =
        runBad(Flaw::Underwrite, Location::Stack,
               Pattern::DirectIndex, AllocatorKind::Subheap);
    ASSERT_NE(outcome.report, nullptr);
    const TrapReport &report = *outcome.report;

    ASSERT_TRUE(report.faultKnown);
    EXPECT_TRUE(report.write);
    if (report.object.present) {
        EXPECT_EQ(report.object.relation, "underflow");
        EXPECT_GT(report.object.distance, 0u);
    }
}

TEST(Forensics, IntraObjectReport)
{
    // Field overflow into a sibling: the access stays inside the
    // allocation, so the diagnosis is intra-object — only the
    // narrowed subobject bounds were violated.
    CaseOutcome outcome =
        runBad(Flaw::Overflow, Location::Heap, Pattern::IntraField,
               AllocatorKind::Subheap);
    ASSERT_NE(outcome.report, nullptr);
    const TrapReport &report = *outcome.report;

    ASSERT_TRUE(report.faultKnown);
    ASSERT_TRUE(report.object.present);
    EXPECT_EQ(report.object.relation, "intra-object");
    EXPECT_TRUE(report.boundsKnown);
}

TEST(Forensics, CrossFunctionStack)
{
    // The helper dereferences; the stack must show main -> helper.
    CaseOutcome outcome =
        runBad(Flaw::Overread, Location::Heap,
               Pattern::CrossFunction, AllocatorKind::Subheap);
    ASSERT_NE(outcome.report, nullptr);
    const TrapReport &report = *outcome.report;
    ASSERT_GE(report.stack.size(), 2u);
    EXPECT_EQ(report.stack.front().function, "main");
    EXPECT_NE(report.stack.back().function, "main");
}

TEST(Forensics, TextAndJsonRenderings)
{
    CaseOutcome outcome =
        runBad(Flaw::Overflow, Location::Heap, Pattern::DirectIndex,
               AllocatorKind::Subheap);
    ASSERT_NE(outcome.report, nullptr);
    const TrapReport &report = *outcome.report;

    std::string text = report.text();
    EXPECT_NE(text.find("trap:"), std::string::npos);
    EXPECT_NE(text.find("guest stack"), std::string::npos);
    EXPECT_NE(text.find("main"), std::string::npos);
    EXPECT_NE(text.find("overflow"), std::string::npos);

    std::string error;
    auto doc = jsonParse(report.json(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());
    EXPECT_NE(doc->find("kind"), nullptr);
    ASSERT_NE(doc->find("stack"), nullptr);
    EXPECT_TRUE(doc->find("stack")->isArray());
    const JsonValue *object = doc->find("object");
    ASSERT_NE(object, nullptr);
    if (object->isObject()) {
        EXPECT_EQ(object->find("relation")->str, "overflow");
        EXPECT_GT(object->find("distance")->asUint(), 0u);
    }
}

TEST(Forensics, WholeSuiteCarriesReports)
{
    // Every bad case that traps must carry a report with a non-empty
    // stack; wrapped allocator exercises the other promote scheme.
    for (AllocatorKind allocator :
         {AllocatorKind::Subheap, AllocatorKind::Wrapped}) {
        SuiteResult suite = runSuite(allocator);
        size_t reports = 0;
        for (const CaseOutcome &outcome : suite.outcomes) {
            if (!outcome.trapped)
                continue;
            ASSERT_NE(outcome.report, nullptr)
                << outcome.testCase.name();
            EXPECT_FALSE(outcome.report->stack.empty())
                << outcome.testCase.name();
            ++reports;
        }
        EXPECT_GT(reports, 0u);
    }
}

} // namespace
} // namespace infat
