/**
 * @file
 * Unit tests for the work-sharing ThreadPool that backs the parallel
 * experiment harness: result ordering, exception propagation, inline
 * (zero-worker) execution, and nested forEach submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hh"

namespace infat {
namespace {

TEST(ThreadPool, ForEachVisitsEveryIndexOnce)
{
    ThreadPool pool(3);
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.forEach(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ResultsLandInFixedSlots)
{
    // The harness's determinism contract: each job writes only its own
    // slot, so the output order equals the input order no matter which
    // worker ran which job.
    ThreadPool pool(4);
    constexpr size_t n = 257;
    std::vector<size_t> out(n, ~size_t(0));
    pool.forEach(n, [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    std::vector<size_t> order;
    pool.forEach(5, [&](size_t i) { order.push_back(i); });
    // Inline execution is the serial loop: strictly ascending.
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ForEachPropagatesException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.forEach(100,
                              [&](size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 13)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    // Every claimed index either ran or was abandoned after the error;
    // the pool itself must remain usable.
    EXPECT_GE(ran.load(), 1);
    std::atomic<int> after{0};
    pool.forEach(10, [&](size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::logic_error("bad"); });
    EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, NestedForEachDoesNotDeadlock)
{
    // A forEach body may itself fan out on the same pool (the caller
    // participates in draining, so inner loops make progress even when
    // every worker is parked inside an outer iteration).
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.forEach(4, [&](size_t) {
        pool.forEach(8, [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

} // namespace
} // namespace infat
