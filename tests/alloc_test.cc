/**
 * @file
 * Unit tests for the raw allocators (glibc-model free list and buddy).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "alloc/buddy_allocator.hh"
#include "alloc/freelist_allocator.hh"
#include "support/rng.hh"

namespace infat {
namespace {

constexpr GuestAddr arenaBase = 0x4000'0000;
constexpr GuestAddr arenaLimit = 0x4100'0000;

TEST(FreeList, UserPointersAre16Aligned)
{
    FreeListAllocator alloc(arenaBase, arenaLimit);
    for (uint64_t size : {1, 7, 8, 24, 100, 4096}) {
        GuestAddr p = alloc.allocate(size);
        ASSERT_NE(p, 0u);
        EXPECT_EQ(p % 16, 0u) << size;
    }
}

TEST(FreeList, MinimumChunkAndUsableSize)
{
    FreeListAllocator alloc(arenaBase, arenaLimit);
    GuestAddr a = alloc.allocate(1);
    GuestAddr b = alloc.allocate(1);
    EXPECT_EQ(b - a, FreeListAllocator::minChunkBytes);
    EXPECT_GE(alloc.usableSize(a), 1u);
}

TEST(FreeList, ReuseAfterFree)
{
    FreeListAllocator alloc(arenaBase, arenaLimit);
    GuestAddr a = alloc.allocate(64);
    alloc.allocate(64); // keep the brk up
    alloc.deallocate(a);
    GuestAddr c = alloc.allocate(48); // fits in a's chunk
    EXPECT_EQ(c, a);
}

TEST(FreeList, CoalescesNeighbours)
{
    FreeListAllocator alloc(arenaBase, arenaLimit);
    GuestAddr a = alloc.allocate(64);
    GuestAddr b = alloc.allocate(64);
    GuestAddr c = alloc.allocate(64);
    alloc.allocate(16); // guard so the brk does not retreat
    alloc.deallocate(a);
    alloc.deallocate(c);
    alloc.deallocate(b); // merges a+b+c
    GuestAddr big = alloc.allocate(200); // only fits if coalesced
    EXPECT_EQ(big, a);
}

TEST(FreeList, BrkRetreatsOnTrailingFree)
{
    FreeListAllocator alloc(arenaBase, arenaLimit);
    GuestAddr a = alloc.allocate(1 << 20);
    uint64_t peak = alloc.peakFootprint();
    alloc.deallocate(a);
    GuestAddr b = alloc.allocate(16);
    EXPECT_EQ(b, a); // reused from the retreated brk
    EXPECT_EQ(alloc.peakFootprint(), peak); // peak is sticky
}

TEST(FreeList, ExhaustionReturnsNull)
{
    FreeListAllocator alloc(arenaBase, arenaBase + 4096);
    EXPECT_EQ(alloc.allocate(1 << 20), 0u);
}

TEST(FreeList, RandomizedLiveSetStaysConsistent)
{
    FreeListAllocator alloc(arenaBase, arenaLimit);
    Rng rng(3);
    std::vector<std::pair<GuestAddr, uint64_t>> live;
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.below(3) != 0) {
            uint64_t size = 1 + rng.below(512);
            GuestAddr p = alloc.allocate(size);
            ASSERT_NE(p, 0u);
            // No overlap with any live allocation.
            for (const auto &[q, qsize] : live) {
                EXPECT_TRUE(p + size <= q || q + qsize <= p)
                    << "overlap at step " << step;
            }
            live.emplace_back(p, size);
        } else {
            size_t victim = rng.below(live.size());
            alloc.deallocate(live[victim].first);
            live.erase(live.begin() + victim);
        }
    }
    EXPECT_EQ(alloc.liveAllocations(), live.size());
}

TEST(Buddy, BlocksAreNaturallyAligned)
{
    BuddyAllocator buddy(0x8000'0000, 26, 12);
    for (unsigned order : {12u, 14u, 16u, 20u}) {
        GuestAddr block = buddy.allocate(order);
        ASSERT_NE(block, 0u);
        EXPECT_EQ(block & ((1ULL << order) - 1), 0u) << order;
    }
}

TEST(Buddy, SplitAndMergeRoundTrip)
{
    BuddyAllocator buddy(0x8000'0000, 20, 12);
    std::vector<GuestAddr> blocks;
    // Exhaust the region with the minimum order.
    for (int i = 0; i < (1 << 8); ++i) {
        GuestAddr b = buddy.allocate(12);
        ASSERT_NE(b, 0u);
        blocks.push_back(b);
    }
    EXPECT_EQ(buddy.allocate(12), 0u); // full
    for (GuestAddr b : blocks)
        buddy.deallocate(b, 12);
    // After all merges, a region-sized block is available again.
    EXPECT_NE(buddy.allocate(20), 0u);
}

TEST(Buddy, DistinctBlocks)
{
    BuddyAllocator buddy(0x8000'0000, 24, 12);
    std::set<GuestAddr> seen;
    for (int i = 0; i < 512; ++i) {
        GuestAddr b = buddy.allocate(12);
        ASSERT_NE(b, 0u);
        EXPECT_TRUE(seen.insert(b).second);
    }
}

TEST(Buddy, PeakFootprintGrowsMonotonically)
{
    BuddyAllocator buddy(0x8000'0000, 24, 12);
    GuestAddr a = buddy.allocate(16);
    uint64_t peak = buddy.peakFootprint();
    buddy.deallocate(a, 16);
    EXPECT_EQ(buddy.peakFootprint(), peak);
    buddy.allocate(12);
    EXPECT_LE(buddy.peakFootprint(), peak);
}

} // namespace
} // namespace infat
