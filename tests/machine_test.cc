/**
 * @file
 * Unit tests for the machine model: instruction semantics, the bounds
 * calling convention of §4.1.2 (passing, implicit clearing), traps,
 * and the timing/statistics plumbing.
 */

#include <gtest/gtest.h>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"
#include "workloads/harness.hh"

namespace infat {
namespace {

using namespace ir;

uint64_t
runMain(Module &m, bool instrument = false,
        AllocatorKind alloc = AllocatorKind::Wrapped)
{
    InstrumentResult inst;
    if (instrument)
        inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = instrument;
    config.allocator = alloc;
    Machine machine(m, instrument ? &inst.layouts : nullptr, config);
    installLibc(machine);
    return machine.run();
}

TEST(MachineSemantics, NarrowIntegerWidths)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    // Store 0x1ff into an i8 slot; load must sign-extend 0xff -> -1.
    Value slot = fb.stackAlloc(tc.i8());
    fb.store(fb.iconst(0x1ff), slot);
    Value v = fb.load(slot);
    fb.ret(fb.eq(v, fb.iconst(-1)));
    EXPECT_EQ(runMain(m), 1u);
}

TEST(MachineSemantics, DivisionAndRemainder)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value a = fb.sdiv(fb.iconst(-7), fb.iconst(2));  // -3
    Value b = fb.srem(fb.iconst(-7), fb.iconst(2));  // -1
    Value c = fb.udiv(fb.iconst(7), fb.iconst(2));   // 3
    Value ok = fb.and_(
        fb.and_(fb.eq(a, fb.iconst(-3)), fb.eq(b, fb.iconst(-1))),
        fb.eq(c, fb.iconst(3)));
    fb.ret(ok);
    EXPECT_EQ(runMain(m), 1u);
}

TEST(MachineSemantics, DivisionByZeroTraps)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value zero = fb.call("rand"); // opaque 0? no: force zero via sub
    Value z = fb.sub(zero, zero);
    fb.ret(fb.sdiv(fb.iconst(1), z));
    Machine machine(m, nullptr, {});
    installLibc(machine);
    EXPECT_THROW(machine.run(), GuestTrap);
}

TEST(MachineSemantics, FloatOpsAndConversions)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value x = fb.fdiv(fb.fconst(7.0), fb.fconst(2.0));
    Value y = fb.fmul(x, fb.fconst(4.0)); // 14.0
    Value lt = fb.flt(fb.fconst(1.0), y);
    fb.ret(fb.add(fb.fptosi(y), lt)); // 14 + 1
    EXPECT_EQ(runMain(m), 15u);
}

TEST(MachineSemantics, ShiftsMaskAmount)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value v = fb.ashr(fb.iconst(-8), fb.iconst(1));
    Value w = fb.lshr(fb.iconst(-8), fb.iconst(60));
    fb.ret(fb.and_(fb.eq(v, fb.iconst(-4)),
                   fb.eq(w, fb.iconst(15))));
    EXPECT_EQ(runMain(m), 1u);
}

TEST(MachineCc, BoundsFlowThroughInstrumentedCalls)
{
    // A helper dereferences one past the end of the buffer the caller
    // passes; bounds must arrive with the argument for detection.
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "helper", {tc.ptr(tc.i64())}, tc.i64());
        fb.ret(fb.load(fb.elemPtr(fb.arg(0), int64_t{8})));
    }
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(8));
    fb.ret(fb.call("helper", {buf}));

    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    EXPECT_THROW(machine.run(), GuestTrap);
}

TEST(MachineCc, UninstrumentedCalleeClearsReturnedBounds)
{
    // An uninstrumented callee returns its pointer argument; the
    // caller must NOT pick up stale bounds (implicit clearing), so the
    // out-of-bounds access goes unchecked — exactly the paper's legacy
    // semantics.
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "legacy_id", {tc.ptr(tc.i64())},
                           tc.ptr(tc.i64()));
        fb.function()->setInstrumented(false);
        fb.ret(fb.arg(0));
    }
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(8));
    Value laundered = fb.call("legacy_id", {buf});
    fb.store(fb.iconst(1), fb.elemPtr(laundered, int64_t{8}));
    fb.ret(fb.iconst(0));

    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    // Unchecked: the bounds were cleared at the boundary. (The tag is
    // still on the pointer, so a *promote* would catch it — but no
    // load happened, so none was inserted.)
    EXPECT_NO_THROW(machine.run());
}

TEST(MachineCc, LdbndStbndCharged)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "leaf", {}, tc.voidTy());
        fb.retVoid();
    }
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(4));
    fb.call("leaf");
    fb.ret(fb.load(fb.elemPtr(buf, int64_t{0})));
    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    machine.run();
    EXPECT_GT(machine.stats().value("bnd_ldst"), 0u);
}

TEST(MachineTraps, StackOverflowDetected)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "recurse", {tc.i64()}, tc.i64());
    fb.stackAlloc(tc.i64(), 512);
    fb.ret(fb.call("recurse", {fb.addImm(fb.arg(0), 1)}));
    FunctionBuilder mb(m, "main", {}, tc.i64());
    mb.ret(mb.call("recurse", {mb.iconst(0)}));
    VmConfig config;
    // Keep the host-stack recursion shallow so the test also runs
    // under sanitizers, whose frames are several times larger.
    config.maxCallDepth = 256;
    Machine machine(m, nullptr, config);
    installLibc(machine);
    try {
        machine.run();
        FAIL();
    } catch (const GuestTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::StackOverflow);
    }
}

TEST(MachineTraps, BadIndirectCall)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value bogus = fb.iconst(99999);
    fb.ret(fb.callPtr(bogus, tc.i64()));
    Machine machine(m, nullptr, {});
    installLibc(machine);
    try {
        machine.run();
        FAIL();
    } catch (const GuestTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::BadIndirectCall);
    }
}

TEST(MachineTraps, NullDereference)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    fb.ret(fb.load(fb.nullPtr(tc.i64())));
    Machine machine(m, nullptr, {});
    installLibc(machine);
    try {
        machine.run();
        FAIL();
    } catch (const GuestTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::NullDereference);
    }
}

TEST(MachineTraps, InstructionLimitGuards)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    BlockId loop = fb.newBlock("loop");
    fb.jmp(loop);
    fb.setBlock(loop);
    fb.jmp(loop); // infinite
    VmConfig config;
    config.maxInstructions = 10000;
    Machine machine(m, nullptr, config);
    installLibc(machine);
    try {
        machine.run();
        FAIL();
    } catch (const GuestTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::InstructionLimit);
    }
}

TEST(MachineTiming, CyclesAtLeastInstructions)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(64));
    Value sum = fb.var(tc.i64());
    fb.assign(sum, fb.iconst(0));
    for (int64_t i = 0; i < 64; ++i)
        fb.assign(sum, fb.add(sum, fb.load(fb.elemPtr(buf, i))));
    fb.ret(sum);
    Machine machine(m, nullptr, {});
    installLibc(machine);
    machine.run();
    EXPECT_GE(machine.cycles(), machine.instructions());
    EXPECT_GT(machine.l1d().accesses(), 0u);
}

TEST(MachineDeterminism, RepeatedRunsIdentical)
{
    auto run_once = [] {
        workloads::RunResult r =
            workloads::runWorkload("mst", workloads::Config::Subheap);
        return std::make_tuple(r.checksum, r.instructions, r.cycles,
                               r.promotes);
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace infat
