/**
 * @file
 * Property sweeps over the whole pipeline: randomly generated access
 * programs must (a) never trap when every access is in bounds, and
 * (b) always trap on the one injected out-of-bounds access — under
 * both allocators. This is the randomized counterpart of the
 * structured Juliet suite.
 */

#include <gtest/gtest.h>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "support/rng.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

namespace infat {
namespace {

using namespace ir;

struct ProgramSpec
{
    uint64_t seed;
    bool inject_fault;
};

/**
 * Build a random program: a handful of heap/stack buffers of random
 * sizes, a few hundred random in-bounds accesses (direct, via helper
 * calls, via stored-and-reloaded pointers), and optionally one access
 * pushed out of bounds.
 */
void
buildRandomProgram(Module &m, const ProgramSpec &spec)
{
    Rng rng(spec.seed);
    declareLibc(m);
    TypeContext &tc = m.types();
    GlobalId slot = m.addGlobal("slot", tc.ptr(tc.i64()));
    {
        FunctionBuilder fb(m, "touch", {tc.ptr(tc.i64()), tc.i64()},
                           tc.i64());
        fb.ret(fb.load(fb.elemPtr(fb.arg(0), fb.arg(1))));
    }

    FunctionBuilder fb(m, "main", {}, tc.i64());
    struct Buffer
    {
        Value ptr;
        int64_t elems;
    };
    std::vector<Buffer> buffers;
    unsigned num_buffers = 2 + static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < num_buffers; ++i) {
        int64_t elems = 1 + static_cast<int64_t>(rng.below(40));
        Value ptr;
        if (rng.below(2)) {
            ptr = fb.mallocTyped(tc.i64(), fb.iconst(elems));
        } else {
            ptr = fb.stackAlloc(tc.i64(), static_cast<uint64_t>(elems));
            fb.call("touch", {ptr, fb.iconst(0)}); // force escape
        }
        buffers.push_back({ptr, elems});
    }

    unsigned accesses = 50 + static_cast<unsigned>(rng.below(200));
    unsigned fault_at = spec.inject_fault
                            ? static_cast<unsigned>(rng.below(accesses))
                            : accesses + 1;
    Value sum = fb.var(tc.i64());
    fb.assign(sum, fb.iconst(0));
    for (unsigned i = 0; i < accesses; ++i) {
        const Buffer &buf = buffers[rng.below(buffers.size())];
        int64_t index;
        if (i == fault_at) {
            // One past the end or one before the beginning.
            index = rng.below(2) ? buf.elems
                                 : -1 - static_cast<int64_t>(
                                           rng.below(3));
        } else {
            index = static_cast<int64_t>(rng.below(
                static_cast<uint64_t>(buf.elems)));
        }
        switch (rng.below(4)) {
          case 0:
            fb.store(fb.iconst(static_cast<int64_t>(i)),
                     fb.elemPtr(buf.ptr, fb.iconst(index)));
            break;
          case 1:
            fb.assign(sum, fb.add(sum, fb.load(fb.elemPtr(
                                           buf.ptr,
                                           fb.iconst(index)))));
            break;
          case 2:
            fb.assign(sum, fb.add(sum, fb.call("touch",
                                               {buf.ptr,
                                                fb.iconst(index)})));
            break;
          default: {
            // Store the pointer, reload (promote), then access.
            fb.store(buf.ptr, fb.globalAddr(slot));
            Value reloaded = fb.load(fb.globalAddr(slot));
            fb.assign(sum, fb.add(sum, fb.load(fb.elemPtr(
                                           reloaded,
                                           fb.iconst(index)))));
            break;
          }
        }
    }
    fb.ret(sum);
}

class VmProperty
    : public ::testing::TestWithParam<std::tuple<int, AllocatorKind>>
{
};

TEST_P(VmProperty, InBoundsProgramsNeverTrap)
{
    auto [seed, allocator] = GetParam();
    Module m;
    buildRandomProgram(m, {static_cast<uint64_t>(seed), false});
    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    config.allocator = allocator;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    EXPECT_NO_THROW(machine.run()) << "seed " << seed;
}

TEST_P(VmProperty, InjectedFaultAlwaysTrapsSpatially)
{
    auto [seed, allocator] = GetParam();
    Module m;
    buildRandomProgram(m, {static_cast<uint64_t>(seed), true});
    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    config.allocator = allocator;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    try {
        machine.run();
        FAIL() << "seed " << seed << ": fault not detected";
    } catch (const GuestTrap &trap) {
        EXPECT_TRUE(trap.isSpatialViolation())
            << "seed " << seed << ": " << trap.what();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VmProperty,
    ::testing::Combine(::testing::Range(0, 20),
                       ::testing::Values(AllocatorKind::Wrapped,
                                         AllocatorKind::Subheap)),
    [](const auto &info) {
        return strfmt("seed%d_%s", std::get<0>(info.param),
                      toString(std::get<1>(info.param)));
    });

} // namespace
} // namespace infat
