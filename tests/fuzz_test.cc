/**
 * @file
 * Robustness fuzzing: the promote engine is hardware — it must handle
 * *any* 64-bit pattern as a pointer and *any* byte soup as metadata
 * without crashing, hanging, or (with MACs enabled) manufacturing
 * valid bounds from corrupted metadata. Plus a smoke test of the
 * instruction-trace facility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ifp/metadata.hh"
#include "ifp/ops.hh"
#include "ifp/promote_engine.hh"
#include "ir/builder.hh"
#include "support/rng.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

namespace infat {
namespace {

TEST(PromoteFuzz, ArbitraryPointersOverGarbageMemory)
{
    GuestMemory mem;
    IfpControlRegs regs;
    regs.macKey = {0xaa, 0xbb};
    regs.globalTableBase = layout::tableBase;
    regs.globalTableRows = IfpConfig::globalTableRows;
    for (unsigned i = 0; i < IfpConfig::numSubheapCtrlRegs; i += 3) {
        regs.subheap[i].valid = true;
        regs.subheap[i].blockOrderLog2 =
            static_cast<uint8_t>(12 + i % 12);
        regs.subheap[i].metaOffset = (i * 64) % 4096;
    }
    PromoteEngine engine(mem, nullptr, regs);

    Rng rng(0xf022);
    // Splatter garbage over a window the fuzzed pointers land in.
    for (int i = 0; i < 4096; ++i)
        mem.store<uint64_t>(0x100000 + i * 8, rng.next());

    for (int i = 0; i < 20000; ++i) {
        uint64_t raw = rng.next();
        if (rng.below(2)) {
            // Bias half the pointers into the garbage window so the
            // metadata fetches actually read the splatter.
            raw = (raw & ~layout::addrMask) |
                  (0x100000 + rng.below(4096 * 8));
        }
        PromoteResult r = engine.promote(TaggedPtr(raw));
        // Never hang (implicit), never panic (implicit), and any
        // retrieved bounds must be internally consistent.
        if (r.retrieved()) {
            EXPECT_LE(r.bounds.lower(), r.bounds.upper());
            EXPECT_TRUE(r.bounds.valid());
        } else if (r.outcome == PromoteResult::Outcome::MetaInvalid) {
            EXPECT_EQ(r.ptr.poison(), Poison::Invalid);
        }
        EXPECT_LT(r.cycles, 10000u);
    }

    // The fuzz must actually have exercised the retrieval paths.
    EXPECT_GT(engine.stats().value("valid_promotes"), 1000u);
}

TEST(PromoteFuzz, LocalOffsetGarbageNeverVerifies)
{
    GuestMemory mem;
    IfpControlRegs regs;
    regs.macKey = {0x1, 0x2};
    PromoteEngine engine(mem, nullptr, regs);
    Rng rng(77);
    unsigned retrieved = 0;
    for (int i = 0; i < 5000; ++i) {
        GuestAddr base = 0x200000 + rng.below(1 << 16) * 16;
        // Garbage "metadata" right where the tag points.
        uint64_t off = rng.below(64);
        mem.store<uint64_t>(base + off * 16, rng.next());
        mem.store<uint64_t>(base + off * 16 + 8, rng.next());
        TaggedPtr p = TaggedPtr::make(base, Scheme::LocalOffset,
                                      off << 6);
        retrieved += engine.promote(p).retrieved();
    }
    EXPECT_EQ(retrieved, 0u); // 48-bit MAC: forgery chance ~2^-48
}

TEST(IfpAddFuzz, NeverProducesUndetectedMetadataDrift)
{
    // Property: after any chain of ifpadds, a local-offset pointer
    // that is still Valid/OOB must have a granule offset that points
    // at the original metadata address.
    Rng rng(123);
    for (int trial = 0; trial < 2000; ++trial) {
        GuestAddr base = 0x40000 + rng.below(1024) * 16;
        uint64_t size = 16 * (1 + rng.below(60));
        GuestAddr meta = base + size;
        TaggedPtr p = TaggedPtr::make(base, Scheme::LocalOffset,
                                      ((meta - base) / 16) << 6);
        for (int step = 0; step < 16 && !p.isNull(); ++step) {
            int64_t delta = rng.range(-64, 64);
            p = ops::ifpAdd(p, delta, Bounds::cleared());
            if (p.poison() == Poison::Invalid)
                break;
            GuestAddr derived_meta =
                roundDown(p.addr(), 16) + p.localGranuleOffset() * 16;
            ASSERT_EQ(derived_meta, meta)
                << "trial " << trial << " step " << step;
        }
    }
}

TEST(Trace, StreamsExecutedInstructions)
{
    ir::Module m;
    declareLibc(m);
    ir::TypeContext &tc = m.types();
    ir::FunctionBuilder fb(m, "main", {}, tc.i64());
    fb.ret(fb.add(fb.iconst(2), fb.iconst(3)));

    Machine machine(m, nullptr, {});
    installLibc(machine);
    std::ostringstream trace;
    StreamTraceSink sink(trace);
    machine.setTraceSink(&sink, traceBit(TraceCategory::Exec));
    EXPECT_EQ(machine.run(), 5u);
    std::string text = trace.str();
    EXPECT_NE(text.find("main"), std::string::npos);
    EXPECT_NE(text.find("add"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

} // namespace
} // namespace infat
