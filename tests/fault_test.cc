/**
 * @file
 * Tests for the metadata fault-injection campaign (oracle/fault.hh):
 * determinism, target coverage, and the core integrity claim — every
 * undetected single-bit corruption lands in a named explanation
 * bucket (unMACed tag bits, extent-aliasing address flips, the
 * unMACed global-table root, unMACed layout tables) or is benign.
 */

#include <gtest/gtest.h>

#include "oracle/fault.hh"
#include "support/stats.hh"

namespace infat {
namespace oracle {
namespace {

TEST(FaultCampaign, SmallCampaignAllCorruptionsAccounted)
{
    FaultCampaignConfig config;
    config.trials = 150;
    FaultCampaignResult result = runFaultCampaign(config);

    EXPECT_EQ(result.trials, config.trials);
    EXPECT_EQ(result.detected + result.benign +
                  result.explainedUndetected + result.unexplained,
              result.trials);
    EXPECT_GT(result.detected, 0u);
    EXPECT_EQ(result.perTarget.size(), kNumFaultTargets);
    EXPECT_EQ(result.unexplained, 0u) << [&] {
        std::string detail;
        for (const std::string &d : result.unexplainedDetails)
            detail += d + "\n";
        return detail;
    }();
    EXPECT_TRUE(result.pass());

    // MAC-covered metadata must never fail open: every non-benign
    // local/subheap metadata flip is detected (no explained bucket
    // exists for those targets by design).
    for (const char *target : {"local_meta", "subheap_meta"}) {
        const auto &counts =
            result.perTarget.at(target); // [det, ben, expl, unexpl]
        EXPECT_EQ(counts[2], 0u) << target;
        EXPECT_EQ(counts[3], 0u) << target;
        EXPECT_GT(counts[0], 0u) << target;
    }
}

TEST(FaultCampaign, DeterministicForSeed)
{
    FaultCampaignConfig config;
    config.trials = 100;
    config.seed = 0xDEADBEEF;

    FaultCampaignResult a = runFaultCampaign(config);
    config.jobs = 3; // parallel run must not change the outcome
    FaultCampaignResult b = runFaultCampaign(config);

    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.benign, b.benign);
    EXPECT_EQ(a.explainedUndetected, b.explainedUndetected);
    EXPECT_EQ(a.unexplained, b.unexplained);
    EXPECT_EQ(a.buckets, b.buckets);

    // A different seed flips different bits.
    config.seed = 0xFEEDFACE;
    FaultCampaignResult c = runFaultCampaign(config);
    EXPECT_EQ(c.trials, config.trials);
    EXPECT_EQ(c.unexplained, 0u);
}

TEST(FaultCampaign, StatsExportShape)
{
    FaultCampaignConfig config;
    config.trials = 60;
    FaultCampaignResult result = runFaultCampaign(config);

    StatGroup group("fault_campaign");
    result.addToStats(group);
    EXPECT_EQ(group.value("trials"), result.trials);
    EXPECT_EQ(group.value("detected"), result.detected);
    EXPECT_EQ(group.value("unexplained"), 0u);
    // Per-target counters exist for every target.
    for (const auto &[name, counts] : result.perTarget) {
        EXPECT_EQ(group.value("target_" + name + "_detected"),
                  counts[0]);
        EXPECT_EQ(group.value("target_" + name + "_unexplained"),
                  counts[3]);
    }
}

} // namespace
} // namespace oracle
} // namespace infat
