/**
 * @file
 * Unit tests for the promote engine: all three metadata schemes, MAC
 * verification, and the subobject narrowing walker, exercised directly
 * against guest memory (no IR or VM involved).
 */

#include <gtest/gtest.h>

#include "compiler/layout_gen.hh"
#include "ifp/metadata.hh"
#include "ifp/ops.hh"
#include "ifp/promote_engine.hh"
#include "ir/module.hh"

namespace infat {
namespace {

class PromoteTest : public ::testing::Test
{
  protected:
    PromoteTest() : engine(mem, nullptr, regs)
    {
        regs.macKey = {0x1111, 0x2222};
        regs.globalTableBase = layout::tableBase;
        regs.globalTableRows = IfpConfig::globalTableRows;
    }

    /** Set up a local-offset object at @p base of @p size bytes. */
    TaggedPtr
    makeLocalObject(GuestAddr base, uint64_t size, GuestAddr lt = 0)
    {
        GuestAddr meta = base + roundUp(size, 16);
        LocalOffsetMeta::write(mem, meta, size, lt, regs.macKey);
        uint64_t offset = (meta - base) / 16;
        return TaggedPtr::make(base, Scheme::LocalOffset, offset << 6);
    }

    GuestMemory mem;
    IfpControlRegs regs;
    PromoteEngine engine;
};

TEST_F(PromoteTest, NullAndLegacyBypass)
{
    PromoteResult null_result = engine.promote(TaggedPtr::legacy(0));
    EXPECT_EQ(null_result.outcome, PromoteResult::Outcome::BypassNull);
    EXPECT_FALSE(null_result.bounds.valid());

    PromoteResult legacy = engine.promote(TaggedPtr::legacy(0x5000));
    EXPECT_EQ(legacy.outcome, PromoteResult::Outcome::BypassLegacy);
    EXPECT_FALSE(legacy.bounds.valid());
    EXPECT_FALSE(legacy.ptr.isPoisoned());
}

TEST_F(PromoteTest, InvalidPointerBypassesLookup)
{
    TaggedPtr p = TaggedPtr::make(0x1000, Scheme::LocalOffset, 4 << 6,
                                  Poison::Invalid);
    PromoteResult result = engine.promote(p);
    EXPECT_EQ(result.outcome, PromoteResult::Outcome::BypassPoisoned);
    EXPECT_EQ(engine.stats().value("meta_fetches"), 0u);
}

TEST_F(PromoteTest, LocalOffsetRetrieval)
{
    TaggedPtr p = makeLocalObject(0x2000, 48);
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_EQ(result.bounds, Bounds(0x2000, 0x2030));
    EXPECT_EQ(result.ptr.poison(), Poison::Valid);
}

TEST_F(PromoteTest, LocalOffsetInteriorPointer)
{
    TaggedPtr base = makeLocalObject(0x2000, 48);
    // Interior pointer 32 bytes in: granule offset shrinks by 2.
    TaggedPtr interior = TaggedPtr::make(
        0x2020, Scheme::LocalOffset,
        (base.localGranuleOffset() - 2) << 6);
    PromoteResult result = engine.promote(interior);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_EQ(result.bounds, Bounds(0x2000, 0x2030));
}

TEST_F(PromoteTest, LocalOffsetMacTamperDetected)
{
    TaggedPtr p = makeLocalObject(0x2000, 48);
    // Corrupt the size field of the metadata.
    GuestAddr meta = 0x2000 + 48;
    mem.store<uint16_t>(meta, 1000);
    PromoteResult result = engine.promote(p);
    EXPECT_EQ(result.outcome, PromoteResult::Outcome::MetaInvalid);
    EXPECT_EQ(result.ptr.poison(), Poison::Invalid);
    EXPECT_EQ(engine.stats().value("mac_fail"), 1u);
}

TEST_F(PromoteTest, MacDisabledStillChecksMagic)
{
    IfpConfig config;
    config.macEnabled = false;
    engine.setConfig(config);
    TaggedPtr p = makeLocalObject(0x2000, 48);
    EXPECT_EQ(engine.promote(p).outcome,
              PromoteResult::Outcome::Retrieved);

    // Zeroed metadata (erased object) must not yield bounds.
    LocalOffsetMeta::erase(mem, 0x2000 + 48);
    EXPECT_EQ(engine.promote(p).outcome,
              PromoteResult::Outcome::MetaInvalid);
}

TEST_F(PromoteTest, SubheapRetrieval)
{
    regs.subheap[3].valid = true;
    regs.subheap[3].blockOrderLog2 = 16; // 64 KiB block
    regs.subheap[3].metaOffset = 0;

    GuestAddr block = 0x10000; // 64 KiB aligned
    SubheapBlockMeta meta;
    meta.slotsStart = 32;
    meta.slotsEnd = 32 + 10 * 64;
    meta.slotSize = 64;
    meta.objectSize = 48;
    meta.layoutTable = 0;
    meta.valid = true;
    SubheapBlockMeta::write(mem, block, 0, meta, regs.macKey);

    // Pointer into slot 4, 8 bytes in.
    GuestAddr addr = block + 32 + 4 * 64 + 8;
    TaggedPtr p = TaggedPtr::make(addr, Scheme::Subheap, 3ULL << 8);
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_EQ(result.bounds,
              Bounds(block + 32 + 4 * 64, block + 32 + 4 * 64 + 48));
    EXPECT_EQ(result.ptr.poison(), Poison::Valid);

    // A pointer in the slot's tail padding is out of the object.
    TaggedPtr pad = TaggedPtr::make(block + 32 + 4 * 64 + 50,
                                    Scheme::Subheap, 3ULL << 8);
    PromoteResult pad_result = engine.promote(pad);
    ASSERT_EQ(pad_result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_EQ(pad_result.ptr.poison(), Poison::OutOfBounds);
}

TEST_F(PromoteTest, SubheapInvalidControlRegisterPoisons)
{
    TaggedPtr p = TaggedPtr::make(0x20000, Scheme::Subheap, 9ULL << 8);
    EXPECT_EQ(engine.promote(p).outcome,
              PromoteResult::Outcome::MetaInvalid);
}

TEST_F(PromoteTest, GlobalTableRetrieval)
{
    GlobalTableRow row;
    row.base = 0x7000;
    row.size = 4096;
    row.valid = true;
    GlobalTableRow::write(mem, regs.globalTableBase, 17, row);

    TaggedPtr p = TaggedPtr::make(0x7800, Scheme::GlobalTable, 17);
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_EQ(result.bounds, Bounds(0x7000, 0x8000));

    // Erased row: poisoned.
    GlobalTableRow::erase(mem, regs.globalTableBase, 17);
    EXPECT_EQ(engine.promote(p).outcome,
              PromoteResult::Outcome::MetaInvalid);
}

/** The paper's Figure 9 example type, narrowed through every entry. */
class NarrowingTest : public PromoteTest
{
  protected:
    NarrowingTest()
    {
        // struct S { int v1; struct { int v3; int v4; } array[2];
        //            int v5; };
        ir::TypeContext &tc = module.types();
        nested = tc.createStruct(
            "NestedTy", {tc.i32(), tc.i32()});
        s = tc.createStruct(
            "S", {tc.i32(),
                  tc.array(nested, 2),
                  tc.i32()});
        table = buildLayoutTable(s);
        table.writeTo(mem, ltAddr);
    }

    ir::Module module;
    ir::StructType *nested = nullptr;
    ir::StructType *s = nullptr;
    LayoutTable table;
    GuestAddr ltAddr = 0x9000;
};

TEST_F(NarrowingTest, TableMatchesPaperExample)
{
    // Offsets: v1 at 0, array at [4, 20) elem 8, v5 at [20, 24).
    ASSERT_EQ(table.numEntries(), 6u);
    EXPECT_EQ(table.entry(0), (LayoutEntry{0, 0, 24, 24}));
    EXPECT_EQ(table.entry(1), (LayoutEntry{0, 0, 4, 4}));   // v1
    EXPECT_EQ(table.entry(2), (LayoutEntry{0, 4, 20, 8}));  // array
    EXPECT_EQ(table.entry(3), (LayoutEntry{2, 0, 4, 4}));   // .v3
    EXPECT_EQ(table.entry(4), (LayoutEntry{2, 4, 8, 4}));   // .v4
    EXPECT_EQ(table.entry(5), (LayoutEntry{0, 20, 24, 4})); // v5
    EXPECT_TRUE(table.entry(2).isArray());
}

TEST_F(NarrowingTest, FieldDeltasMatchTable)
{
    EXPECT_EQ(layoutFieldDelta(s, 0), 1u); // v1
    EXPECT_EQ(layoutFieldDelta(s, 1), 2u); // array
    EXPECT_EQ(layoutFieldDelta(s, 2), 5u); // v5
    EXPECT_EQ(layoutFieldDelta(nested, 0), 1u);
    EXPECT_EQ(layoutFieldDelta(nested, 1), 2u);
}

TEST_F(NarrowingTest, NarrowsScalarField)
{
    GuestAddr obj = 0x3000;
    TaggedPtr base = makeLocalObject(obj, 24, ltAddr);

    // &s->v5 : subobject index 5, address obj + 20. ifpadd keeps the
    // granule-offset field consistent across the move.
    TaggedPtr p = ops::ifpAdd(base.withSubobjIndex(5), 20,
                              Bounds::cleared());
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_TRUE(result.narrowSucceeded);
    EXPECT_EQ(result.bounds, Bounds(obj + 20, obj + 24));
}

TEST_F(NarrowingTest, NarrowsArrayOfStructElement)
{
    GuestAddr obj = 0x3000;
    TaggedPtr base = makeLocalObject(obj, 24, ltAddr);

    // &s->array[1].v3 : index 3, address obj + 4 + 8.
    TaggedPtr p = base.withSubobjIndex(3).withAddr(obj + 12);
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_TRUE(result.narrowSucceeded);
    EXPECT_EQ(result.bounds, Bounds(obj + 12, obj + 16));

    // &s->array[0].v4 : index 4, address obj + 4 + 4.
    TaggedPtr q = base.withSubobjIndex(4).withAddr(obj + 8);
    PromoteResult result_q = engine.promote(q);
    EXPECT_EQ(result_q.bounds, Bounds(obj + 8, obj + 12));

    // &s->array (the whole array): index 2.
    TaggedPtr arr = base.withSubobjIndex(2).withAddr(obj + 4);
    PromoteResult result_arr = engine.promote(arr);
    EXPECT_EQ(result_arr.bounds, Bounds(obj + 4, obj + 20));
}

TEST_F(NarrowingTest, MallocedArrayOfStructUsesRootElementSize)
{
    // malloc(3 * sizeof(S)): object of 72 bytes sharing S's table.
    GuestAddr obj = 0x4000;
    GuestAddr meta = obj + 72 + 8; // round up to granule
    LocalOffsetMeta::write(mem, meta, 72, ltAddr, regs.macKey);
    TaggedPtr base = TaggedPtr::make(obj, Scheme::LocalOffset,
                                     ((meta - obj) / 16) << 6);

    // &objs[2].v5 : index 5, address obj + 48 + 20.
    TaggedPtr p = ops::ifpAdd(base.withSubobjIndex(5), 68,
                              Bounds::cleared());
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_TRUE(result.narrowSucceeded);
    EXPECT_EQ(result.bounds, Bounds(obj + 68, obj + 72));
}

TEST_F(NarrowingTest, NoLayoutTableCoarsensToObjectBounds)
{
    GuestAddr obj = 0x3000;
    TaggedPtr base = makeLocalObject(obj, 24, /*lt=*/0);
    TaggedPtr p = ops::ifpAdd(base.withSubobjIndex(5), 20,
                              Bounds::cleared());
    PromoteResult result = engine.promote(p);
    ASSERT_EQ(result.outcome, PromoteResult::Outcome::Retrieved);
    EXPECT_TRUE(result.narrowAttempted);
    EXPECT_FALSE(result.narrowSucceeded);
    EXPECT_EQ(result.bounds, Bounds(obj, obj + 24));
}

TEST_F(NarrowingTest, CorruptEntryPoisons)
{
    GuestAddr obj = 0x3000;
    TaggedPtr base = makeLocalObject(obj, 24, ltAddr);
    // Corrupt entry 5: parent points forward (cycle-ish).
    LayoutEntry bad{5, 0, 4, 4};
    uint64_t w0, w1;
    bad.encode(w0, w1);
    mem.store<uint64_t>(ltAddr + 5 * 16, w0);
    mem.store<uint64_t>(ltAddr + 5 * 16 + 8, w1);

    TaggedPtr p = ops::ifpAdd(base.withSubobjIndex(5), 20,
                              Bounds::cleared());
    PromoteResult result = engine.promote(p);
    EXPECT_EQ(result.outcome, PromoteResult::Outcome::MetaInvalid);
    EXPECT_EQ(result.ptr.poison(), Poison::Invalid);
}

} // namespace
} // namespace infat
