/**
 * @file
 * Unit tests for the observability layer: histogram bucketing edge
 * cases, registry collision handling, JSON export round-trips, dump
 * ordering/suppression, geomean corner cases, and the trace-event
 * subsystem (category gating + Chrome trace-event output shape).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/trace.hh"

namespace infat {
namespace {

TEST(Counter, IncrementReturnValues)
{
    Counter c;
    EXPECT_EQ(++c, 1u);       // pre-increment: new value
    EXPECT_EQ(c++, 1u);       // post-increment: old value
    EXPECT_EQ(c.value(), 2u); // no implicit conversion; explicit read
    c += 40;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, Log2Bucketing)
{
    Histogram h = Histogram::log2(8);
    // Bucket 0 holds exactly the value 0; bucket i >= 1 holds
    // [2^(i-1), 2^i).
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(127); // bucket 7: [64, 128)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(7), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucketLo(0), 0u);
    EXPECT_EQ(h.bucketHi(0), 1u);
    EXPECT_EQ(h.bucketLo(2), 2u);
    EXPECT_EQ(h.bucketHi(2), 4u);
}

TEST(Histogram, OverflowAndUnderflow)
{
    Histogram h = Histogram::log2(4); // covers [0, 8)
    h.sample(8);
    h.sample(~0ULL);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.maxValue(), ~0ULL);

    Histogram lin = Histogram::linear(10, 5, 4); // covers [10, 30)
    lin.sample(9);  // below lo -> underflow
    lin.sample(10); // bucket 0
    lin.sample(29); // bucket 3
    lin.sample(30); // overflow
    EXPECT_EQ(lin.underflow(), 1u);
    EXPECT_EQ(lin.overflow(), 1u);
    EXPECT_EQ(lin.bucketCount(0), 1u);
    EXPECT_EQ(lin.bucketCount(3), 1u);
    EXPECT_EQ(lin.bucketLo(3), 25u);
    EXPECT_EQ(lin.bucketHi(3), 30u);
    // Underflow/overflow samples still feed the moments.
    EXPECT_EQ(lin.count(), 4u);
    EXPECT_EQ(lin.minValue(), 9u);
    EXPECT_EQ(lin.maxValue(), 30u);
}

TEST(Histogram, SingleSample)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.minValue(), 0u); // no samples: min reads as 0
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.sample(7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.minValue(), 7u);
    EXPECT_EQ(h.maxValue(), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    d.sample(2);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0); // < 2 samples
    d.sample(4);
    d.sample(4);
    d.sample(6);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(2.0), 1e-12);
    EXPECT_EQ(d.minValue(), 2u);
    EXPECT_EQ(d.maxValue(), 6u);
}

TEST(StatGroup, DumpDeterministicOrder)
{
    StatGroup g("g");
    // Insert in non-lexicographic order; dump must sort by name with
    // counters before histograms before distributions before formulas.
    g.counter("zeta") += 1;
    g.counter("alpha") += 2;
    g.histogram("lat").sample(3);
    g.distribution("cost").sample(4);
    g.formula("ratio", [] { return 0.5; });

    DumpOptions opts;
    opts.suppressZero = false;
    std::string first = g.dump(opts);
    std::string second = g.dump(opts);
    EXPECT_EQ(first, second);
    size_t alpha = first.find("g.alpha");
    size_t zeta = first.find("g.zeta");
    size_t lat = first.find("g.lat");
    size_t cost = first.find("g.cost");
    size_t ratio = first.find("g.ratio");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    ASSERT_NE(lat, std::string::npos);
    ASSERT_NE(cost, std::string::npos);
    ASSERT_NE(ratio, std::string::npos);
    EXPECT_LT(alpha, zeta); // lexicographic within counters
    EXPECT_LT(zeta, lat);   // counters before histograms
    EXPECT_LT(lat, cost);   // histograms before distributions
    EXPECT_LT(cost, ratio); // distributions before formulas
}

TEST(StatGroup, DumpSuppressesZeroStats)
{
    StatGroup g("g");
    g.counter("hot") += 3;
    g.counter("cold");
    g.histogram("empty");

    DumpOptions all;
    all.suppressZero = false;
    EXPECT_NE(g.dump(all).find("g.cold"), std::string::npos);

    DumpOptions quiet_opts;
    quiet_opts.suppressZero = true;
    std::string dumped = g.dump(quiet_opts);
    EXPECT_NE(dumped.find("g.hot 3"), std::string::npos);
    EXPECT_EQ(dumped.find("g.cold"), std::string::npos);
    EXPECT_EQ(dumped.find("g.empty"), std::string::npos);
}

TEST(StatGroup, DumpDefaultRespectsSetQuiet)
{
    StatGroup g("g");
    g.counter("zero");
    setQuiet(true);
    std::string quiet_dump = g.dump();
    setQuiet(false);
    std::string loud_dump = g.dump();
    EXPECT_EQ(quiet_dump.find("g.zero"), std::string::npos);
    EXPECT_NE(loud_dump.find("g.zero"), std::string::npos);
}

TEST(StatRegistry, NameCollisionSuffixes)
{
    StatGroup a("l1d"), b("l1d"), c("l1d");
    StatRegistry reg;
    EXPECT_EQ(reg.add(&a), "l1d");
    EXPECT_EQ(reg.add(&b), "l1d#2");
    EXPECT_EQ(reg.add(&c), "l1d#3");
    EXPECT_EQ(reg.find("l1d"), &a);
    EXPECT_EQ(reg.find("l1d#2"), &b);
    EXPECT_EQ(reg.find("l1d#3"), &c);
    EXPECT_EQ(reg.find("l2"), nullptr);
    EXPECT_EQ(reg.groups().size(), 3u);
}

TEST(StatRegistry, JsonExportRoundTrip)
{
    StatGroup vm("vm");
    vm.counter("instructions") += 1000;
    vm.counter("cycles") += 2500;
    vm.formula("cpi", [] { return 2.5; });
    vm.histogram("lat", Histogram::log2(8)).sample(5, 3);
    vm.distribution("cost").sample(10);
    vm.distribution("cost").sample(20);

    StatRegistry reg;
    reg.add(&vm);
    StatSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.scalar("vm", "instructions"), 1000u);

    std::string err;
    std::optional<JsonValue> doc = jsonParse(snap.toJson(true), &err);
    ASSERT_TRUE(doc.has_value()) << err;

    const JsonValue *groups = doc->find("groups");
    ASSERT_NE(groups, nullptr);
    const JsonValue *g = groups->find("vm");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->find("scalars")->find("cycles")->asUint(), 2500u);
    EXPECT_DOUBLE_EQ(g->find("formulas")->find("cpi")->number, 2.5);

    const JsonValue *lat = g->find("histograms")->find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asUint(), 3u);
    EXPECT_EQ(lat->find("sum")->asUint(), 15u);
    const JsonValue *buckets = lat->find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    ASSERT_EQ(buckets->arr.size(), 1u); // only non-empty buckets
    EXPECT_EQ(buckets->arr[0].find("lo")->asUint(), 4u);
    EXPECT_EQ(buckets->arr[0].find("hi")->asUint(), 8u);
    EXPECT_EQ(buckets->arr[0].find("count")->asUint(), 3u);

    const JsonValue *cost = g->find("distributions")->find("cost");
    ASSERT_NE(cost, nullptr);
    EXPECT_EQ(cost->find("count")->asUint(), 2u);
    EXPECT_DOUBLE_EQ(cost->find("mean")->number, 15.0);
}

TEST(Stats, GeomeanEdgeCases)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    // Non-positive inputs have no log-domain mean; defined as 0.
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 0.0, 8.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({-1.0, 4.0}), 0.0);
}

TEST(Trace, CategoryParsing)
{
    EXPECT_EQ(parseTraceCategories("all"), traceMaskAll);
    EXPECT_EQ(parseTraceCategories(""), traceMaskAll);
    EXPECT_EQ(parseTraceCategories("none"), 0u);
    EXPECT_EQ(parseTraceCategories("promote"),
              traceBit(TraceCategory::Promote));
    EXPECT_EQ(parseTraceCategories("exec,cache"),
              traceBit(TraceCategory::Exec) |
                  traceBit(TraceCategory::Cache));
}

TEST(Trace, MaskGatesEmission)
{
    CollectTraceSink sink;
    Tracer tracer;
    uint64_t clock = 100;
    tracer.setClock(&clock);

    // No sink: everything disabled.
    EXPECT_FALSE(tracer.enabled(TraceCategory::Exec));
    tracer.instant(TraceCategory::Exec, "dropped");

    tracer.setSink(&sink, traceBit(TraceCategory::Promote));
    EXPECT_TRUE(tracer.enabled(TraceCategory::Promote));
    EXPECT_FALSE(tracer.enabled(TraceCategory::Cache));
    tracer.instant(TraceCategory::Cache, "filtered");
    tracer.instant(TraceCategory::Promote, "kept", {{"cycles", 7ull}});
    clock = 250;
    tracer.complete(TraceCategory::Promote, "span", 200, 50);

    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_EQ(sink.events[0].name, "kept");
    EXPECT_EQ(sink.events[0].phase, 'i');
    EXPECT_EQ(sink.events[0].ts, 100u);
    ASSERT_EQ(sink.events[0].args.size(), 1u);
    EXPECT_STREQ(sink.events[0].args[0].key, "cycles");
    EXPECT_EQ(sink.events[0].args[0].num, 7u);
    EXPECT_EQ(sink.events[1].phase, 'X');
    EXPECT_EQ(sink.events[1].ts, 200u);
    EXPECT_EQ(sink.events[1].dur, 50u);
}

TEST(Trace, ChromeSinkEmitsValidTraceEventJson)
{
    std::ostringstream out;
    {
        ChromeTraceSink sink(out);
        TraceEvent ev;
        ev.category = TraceCategory::Cache;
        ev.phase = 'i';
        ev.ts = 42;
        ev.name = "l1d.rmiss";
        ev.args.push_back({"addr", uint64_t{0x1000}});
        ev.args.push_back({"level", "l1d"});
        sink.event(ev);

        TraceEvent span;
        span.category = TraceCategory::Promote;
        span.phase = 'X';
        span.ts = 50;
        span.dur = 9;
        span.name = "promote \"quoted\"";
        sink.event(span);
        sink.close();
        // Events after close are ignored, not appended.
        sink.event(ev);
    }

    std::string err;
    std::optional<JsonValue> doc = jsonParse(out.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    ASSERT_EQ(events->arr.size(), 2u);

    const JsonValue &first = events->arr[0];
    EXPECT_EQ(first.find("ph")->str, "i");
    EXPECT_EQ(first.find("ts")->asUint(), 42u);
    EXPECT_EQ(first.find("name")->str, "l1d.rmiss");
    EXPECT_EQ(first.find("cat")->str, "cache");
    ASSERT_NE(first.find("pid"), nullptr);
    ASSERT_NE(first.find("tid"), nullptr);
    EXPECT_EQ(first.find("args")->find("addr")->asUint(), 0x1000u);
    EXPECT_EQ(first.find("args")->find("level")->str, "l1d");

    const JsonValue &second = events->arr[1];
    EXPECT_EQ(second.find("ph")->str, "X");
    EXPECT_EQ(second.find("dur")->asUint(), 9u);
    EXPECT_EQ(second.find("name")->str, "promote \"quoted\"");
}

} // namespace
} // namespace infat
