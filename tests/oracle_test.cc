/**
 * @file
 * Unit and integration tests for the differential bounds oracle
 * (oracle/oracle.hh): classification against ground-truth extents,
 * stale-provenance abstention, stack unwinding, the diff machinery's
 * ability to actually flag disagreements (so the suite-level zeros are
 * meaningful), and zero FN/FP across the generated Juliet suite.
 */

#include <gtest/gtest.h>

#include "juliet/juliet.hh"
#include "oracle/oracle.hh"
#include "workloads/harness.hh"

namespace infat {
namespace oracle {
namespace {

TEST(ShadowOracle, ClassifiesObjectExtent)
{
    ShadowOracle oracle;
    Prov p = oracle.registerObject(0x1000, 64, ObjectKind::Heap);
    ASSERT_TRUE(p.valid());
    EXPECT_FALSE(p.hasSub());

    EXPECT_EQ(oracle.classify(p, 0x1000, 8), Verdict::InBounds);
    EXPECT_EQ(oracle.classify(p, 0x1038, 8), Verdict::InBounds);
    EXPECT_EQ(oracle.classify(p, 0x1039, 8), Verdict::OutOfBounds);
    EXPECT_EQ(oracle.classify(p, 0x1040, 1), Verdict::OutOfBounds);
    EXPECT_EQ(oracle.classify(p, 0xfff, 1), Verdict::OutOfBounds);
    // An access straddling the upper bound is out, even though it
    // starts inside.
    EXPECT_EQ(oracle.classify(p, 0x103c, 8), Verdict::OutOfBounds);
}

TEST(ShadowOracle, ClassifiesSubobjectExtent)
{
    ShadowOracle oracle;
    Prov p = oracle.registerObject(0x2000, 128, ObjectKind::Stack);
    // Instrumentation entered the field at [0x2010, 0x2030).
    p.subLower = 0x2010;
    p.subUpper = 0x2030;
    ASSERT_TRUE(p.hasSub());

    EXPECT_EQ(oracle.classify(p, 0x2010, 8), Verdict::InBounds);
    EXPECT_EQ(oracle.classify(p, 0x2028, 8), Verdict::InBounds);
    // Inside the object, outside the subobject: the intra-object case.
    EXPECT_EQ(oracle.classify(p, 0x2030, 8), Verdict::IntraObject);
    EXPECT_EQ(oracle.classify(p, 0x2008, 8), Verdict::IntraObject);
    // Outside the whole object wins over the subobject verdict.
    EXPECT_EQ(oracle.classify(p, 0x2080, 8), Verdict::OutOfBounds);
}

TEST(ShadowOracle, StaleProvenanceGetsTemporalVerdict)
{
    ShadowOracle oracle;
    EXPECT_EQ(oracle.classify(Prov{}, 0x1000, 8), Verdict::Unknown);

    Prov p = oracle.registerObject(0x3000, 32, ObjectKind::Heap);
    oracle.freeObjectAt(0x3000);
    EXPECT_EQ(oracle.classify(p, 0x3000, 8), Verdict::Stale);

    // Re-registering the same base supersedes: the old provenance
    // keeps referring to the dead object (stale) instead of adopting
    // the new object's extent.
    Prov p2 = oracle.registerObject(0x3000, 16, ObjectKind::Heap);
    EXPECT_EQ(oracle.classify(p, 0x3000, 8), Verdict::Stale);
    EXPECT_EQ(oracle.classify(p2, 0x3000, 8), Verdict::InBounds);
}

TEST(ShadowOracle, StaleVerdictFeedsTemporalCounters)
{
    ShadowOracle oracle;
    Prov p = oracle.registerObject(0x3000, 32, ObjectKind::Heap);
    oracle.freeObjectAt(0x3000);

    // Defense trapped the use-after-free: temporal true positive.
    oracle.check(p, 0x3000, 8, /*write=*/false, /*ifp_traps=*/true,
                 /*ifp_temporal=*/true);
    EXPECT_EQ(oracle.temporalTruePositives(), 1u);
    // Missed it: temporal false negative — the *spatial* FN counter
    // must not move (the spatial zero-FN gates keep their meaning).
    oracle.check(p, 0x3000, 8, false, false);
    EXPECT_EQ(oracle.temporalFalseNegatives(), 1u);
    EXPECT_EQ(oracle.falseNegatives(), 0u);
}

TEST(ShadowOracle, CheckFreeDiffsDoubleFreeGroundTruth)
{
    ShadowOracle oracle;
    oracle.registerObject(0x3000, 32, ObjectKind::Heap);

    // Correct free, no trap: nothing moves.
    oracle.checkFree(0x3000, /*ifp_traps=*/false);
    oracle.freeObjectAt(0x3000);
    EXPECT_EQ(oracle.temporalFalsePositives(), 0u);

    // Double free caught by the runtime: temporal true positive.
    oracle.checkFree(0x3000, true);
    EXPECT_EQ(oracle.temporalTruePositives(), 1u);
    // Double free missed: temporal false negative.
    oracle.checkFree(0x3000, false);
    EXPECT_EQ(oracle.temporalFalseNegatives(), 1u);
    // Never-tracked address: abstain either way.
    oracle.checkFree(0x7777, false);
    EXPECT_EQ(oracle.temporalFalseNegatives(), 1u);

    // Trapping a correct free of a live object is a false positive on
    // both the temporal and overall axes.
    oracle.registerObject(0x5000, 16, ObjectKind::Heap);
    oracle.checkFree(0x5000, true);
    EXPECT_EQ(oracle.temporalFalsePositives(), 1u);
    EXPECT_EQ(oracle.falsePositives(), 1u);
}

TEST(ShadowOracle, CheckFreeProvenanceDisambiguatesRecycledSlot)
{
    ShadowOracle oracle;
    Prov p = oracle.registerObject(0x3000, 32, ObjectKind::Heap);
    oracle.freeObjectAt(0x3000);
    // The allocator recycles the slot: live again under a new object.
    Prov q = oracle.registerObject(0x3000, 32, ObjectKind::Heap);

    // Base-keyed ground truth would call a trap here a false
    // positive; the stale provenance proves it is a stale free.
    oracle.checkFree(0x3000, true, p);
    EXPECT_EQ(oracle.temporalTruePositives(), 1u);
    EXPECT_EQ(oracle.temporalFalsePositives(), 0u);
    // Missing the stale free is a temporal false negative.
    oracle.checkFree(0x3000, false, p);
    EXPECT_EQ(oracle.temporalFalseNegatives(), 1u);
    // A correct free of the live new object must not trap...
    oracle.checkFree(0x3000, true, q);
    EXPECT_EQ(oracle.temporalFalsePositives(), 1u);
    // ...and silently passing it moves nothing.
    oracle.checkFree(0x3000, false, q);
    EXPECT_EQ(oracle.temporalFalsePositives(), 1u);
    EXPECT_EQ(oracle.temporalTruePositives(), 1u);
}

TEST(ShadowOracle, UnwindKillsCalleeStackObjects)
{
    ShadowOracle oracle;
    // Stack grows down: caller object above, callee objects below.
    Prov caller = oracle.registerObject(0x9000, 64, ObjectKind::Stack);
    Prov callee1 = oracle.registerObject(0x8f00, 32, ObjectKind::Stack);
    Prov callee2 = oracle.registerObject(0x8e00, 32, ObjectKind::Stack);

    oracle.unwindStack(0x9000); // return: sp restored above callees
    EXPECT_EQ(oracle.classify(callee1, 0x8f00, 8), Verdict::Stale);
    EXPECT_EQ(oracle.classify(callee2, 0x8e00, 8), Verdict::Stale);
    EXPECT_EQ(oracle.classify(caller, 0x9000, 8), Verdict::InBounds);
}

TEST(ShadowOracle, ShadowMemoryGuardsOnRawValue)
{
    ShadowOracle oracle;
    Prov p = oracle.registerObject(0x4000, 64, ObjectKind::Heap);

    oracle.recordStore(0x5000, 0x4000, p);
    EXPECT_TRUE(oracle.loadProv(0x5000, 0x4000).valid());
    // Memory changed under the slot (e.g. a native memcpy): the raw
    // value no longer matches, so the load abstains.
    EXPECT_FALSE(oracle.loadProv(0x5000, 0x4008).valid());
    // A narrower store clobbers the slot entirely.
    oracle.clobberStore(0x5000);
    EXPECT_FALSE(oracle.loadProv(0x5000, 0x4000).valid());
}

TEST(ShadowOracle, DiffFlagsDisagreements)
{
    // The zero-FN/FP suite results are only meaningful if the diff
    // machinery actually fires on a disagreement; feed it both kinds.
    ShadowOracle oracle;
    Prov p = oracle.registerObject(0x6000, 32, ObjectKind::Heap);

    // Oracle says out-of-bounds, defense did not trap: false negative.
    oracle.check(p, 0x6040, 8, /*write=*/true, /*ifp_traps=*/false);
    EXPECT_EQ(oracle.falseNegatives(), 1u);

    // Oracle says in-bounds, defense trapped: false positive.
    oracle.check(p, 0x6000, 8, /*write=*/false, /*ifp_traps=*/true);
    EXPECT_EQ(oracle.falsePositives(), 1u);

    // Agreements on both sides.
    oracle.check(p, 0x6000, 8, false, false);
    oracle.check(p, 0x6040, 8, true, true);
    EXPECT_EQ(oracle.trueNegatives(), 1u);
    EXPECT_EQ(oracle.truePositives(), 1u);

    // No provenance: abstain regardless of the defense's verdict.
    oracle.check(Prov{}, 0x7000, 8, false, true);
    EXPECT_EQ(oracle.abstained(), 1u);
    EXPECT_EQ(oracle.checks(), 5u);
    ASSERT_EQ(oracle.discrepancies().size(), 2u);
    EXPECT_TRUE(oracle.discrepancies()[0].falseNegative);
    EXPECT_FALSE(oracle.discrepancies()[1].falseNegative);
}

TEST(OracleJuliet, SingleCaseDiffsAccesses)
{
    juliet::TestCase tc;
    tc.flaw = juliet::Flaw::Overflow;
    tc.location = juliet::Location::Heap;
    tc.pattern = juliet::Pattern::DirectIndex;
    tc.bad = true;

    juliet::OracleCaseOutcome result =
        juliet::runCaseWithOracle(tc, AllocatorKind::Wrapped);
    EXPECT_TRUE(result.outcome.trapped);
    EXPECT_TRUE(result.outcome.correct);
    EXPECT_GT(result.checks, 0u);
    EXPECT_EQ(result.falseNegatives, 0u);
    EXPECT_EQ(result.falsePositives, 0u);
}

TEST(OracleWorkload, AttachmentIsHostSideOnly)
{
    // The oracle disables the interpreter's fast path and shadows
    // every access, but it must never perturb the simulation itself:
    // checksum, instruction count, and cycle count are bit-identical
    // with and without it.
    using namespace workloads;
    RunResult plain = runWorkload("perimeter", Config::Wrapped);

    ShadowOracle shadow;
    Observability obs;
    obs.oracle = &shadow;
    RunResult diffed = runWorkload("perimeter", Config::Wrapped, obs);

    EXPECT_EQ(plain.checksum, diffed.checksum);
    EXPECT_EQ(plain.instructions, diffed.instructions);
    EXPECT_EQ(plain.cycles, diffed.cycles);
    EXPECT_GT(shadow.checks(), 0u);
}

TEST(OracleJuliet, FullSuiteZeroFalseNegativesZeroFalsePositives)
{
    juliet::OracleSuiteResult suite =
        juliet::runSuiteWithOracle(AllocatorKind::Wrapped);
    EXPECT_TRUE(suite.clean()) << [&] {
        std::string detail;
        for (const auto &[cell, counts] : suite.cells) {
            if (counts.falseNegatives + counts.falsePositives == 0)
                continue;
            detail += cell + ": fn=" +
                      std::to_string(counts.falseNegatives) + " fp=" +
                      std::to_string(counts.falsePositives) + "\n";
        }
        return detail.empty() ? std::string("suite-level miss") : detail;
    }();
    EXPECT_EQ(suite.total, juliet::generateSuite().size());
    EXPECT_GT(suite.checks, 0u);
    // The temporal cells feed the temporal axis: detections become
    // true positives, and the only false negatives sit in the two
    // documented residual buckets.
    EXPECT_GT(suite.temporalTruePositives, 0u);
    EXPECT_EQ(suite.temporalFalsePositives, 0u);
    EXPECT_EQ(suite.temporalFalseNegativesUnexplained, 0u);
    ASSERT_EQ(suite.missBuckets.count("register_held"), 1u);
    EXPECT_EQ(suite.missBuckets.at("register_held"), 3u);
    ASSERT_EQ(suite.missBuckets.count("generation_wraparound"), 1u);
    EXPECT_EQ(suite.missBuckets.at("generation_wraparound"), 1u);
}

} // namespace
} // namespace oracle
} // namespace infat
