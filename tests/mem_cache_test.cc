/**
 * @file
 * Unit tests for the guest memory and cache models.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "mem/guest_memory.hh"

namespace infat {
namespace {

TEST(GuestMemory, ZeroFilledOnFirstTouch)
{
    GuestMemory mem;
    EXPECT_EQ(mem.load<uint64_t>(0x12345678), 0u);
}

TEST(GuestMemory, RoundTripAcrossPageBoundary)
{
    GuestMemory mem;
    GuestAddr addr = GuestMemory::pageSize - 3;
    mem.store<uint64_t>(addr, 0x1122334455667788ULL);
    EXPECT_EQ(mem.load<uint64_t>(addr), 0x1122334455667788ULL);
    // The bytes landed on both pages.
    EXPECT_EQ(mem.load<uint8_t>(GuestMemory::pageSize - 3), 0x88);
    EXPECT_EQ(mem.load<uint8_t>(GuestMemory::pageSize), 0x55);
}

TEST(GuestMemory, TagBitsIgnored)
{
    GuestMemory mem;
    mem.store<uint32_t>(0x1000, 0xdeadbeef);
    GuestAddr tagged = 0x1000 | (0xabcdULL << 48);
    EXPECT_EQ(mem.load<uint32_t>(tagged), 0xdeadbeefu);
}

TEST(GuestMemory, FillAndCopy)
{
    GuestMemory mem;
    mem.fill(0x2000, 0x5a, 100);
    EXPECT_EQ(mem.load<uint8_t>(0x2000), 0x5a);
    EXPECT_EQ(mem.load<uint8_t>(0x2063), 0x5a);
    EXPECT_EQ(mem.load<uint8_t>(0x2064), 0u);
    mem.copy(0x9000, 0x2000, 100);
    EXPECT_EQ(mem.load<uint8_t>(0x9063), 0x5a);
}

TEST(GuestMemory, ResidentTracksTouchedPages)
{
    GuestMemory mem;
    EXPECT_EQ(mem.pagesTouched(), 0u);
    mem.store<uint8_t>(0x0, 1);
    mem.store<uint8_t>(0x10, 1); // same page
    EXPECT_EQ(mem.pagesTouched(), 1u);
    mem.store<uint8_t>(1 << 20, 1);
    EXPECT_EQ(mem.pagesTouched(), 2u);
    EXPECT_EQ(mem.residentBytes(), 2 * GuestMemory::pageSize);
}

TEST(Cache, HitAfterMiss)
{
    Cache cache("t");
    auto first = cache.access(0x1000, 8, false);
    EXPECT_FALSE(first.hit);
    auto second = cache.access(0x1008, 8, false); // same 16 B line
    EXPECT_TRUE(second.hit);
    EXPECT_LT(second.latency, first.latency);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, LineSpanningAccessTouchesBothLines)
{
    Cache cache("t");
    cache.access(0x1008, 16, false); // spans lines 0x1000 and 0x1010
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_TRUE(cache.access(0x1000, 8, false).hit);
    EXPECT_TRUE(cache.access(0x1010, 8, false).hit);
}

TEST(Cache, LruEvictionWithinSet)
{
    CacheConfig config;
    config.sizeBytes = 256; // 2 sets x 8 ways x 16 B
    config.assoc = 8;
    Cache cache("t", config);
    // Fill one set (stride = 32 bytes keeps us in set 0).
    for (unsigned i = 0; i < 8; ++i)
        cache.access(i * 32, 1, false);
    EXPECT_TRUE(cache.access(0, 1, false).hit);   // refresh way 0
    cache.access(8 * 32, 1, false);               // evicts LRU (way 1)
    EXPECT_TRUE(cache.access(0, 1, false).hit);   // still cached
    EXPECT_FALSE(cache.access(32, 1, false).hit); // evicted
}

TEST(Cache, WritebackCountsDirtyEvictions)
{
    CacheConfig config;
    config.sizeBytes = 128; // 1 set x 8 ways
    config.assoc = 8;
    Cache cache("t", config);
    cache.access(0, 8, true); // dirty
    for (unsigned i = 1; i <= 8; ++i)
        cache.access(i * 16, 1, false);
    EXPECT_EQ(cache.stats().value("writebacks"), 1u);
}

TEST(Cache, L2ReducesMissLatency)
{
    CacheConfig l1_cfg;
    l1_cfg.missPenalty = 20;
    CacheConfig l2_cfg{256 * 1024, 8, 64, 8, 60};
    Cache flat("flat", l1_cfg);
    Cache l1("l1", l1_cfg);
    Cache l2("l2", l2_cfg);
    l1.setNextLevel(&l2);

    // Cold miss through the hierarchy pays L2's memory penalty.
    auto cold = l1.access(0x1000, 8, false);
    EXPECT_FALSE(cold.hit);
    EXPECT_EQ(cold.latency, 1u + 8u + 60u);
    EXPECT_EQ(l2.misses(), 1u);

    // Evict the line from L1 (fill its set), then re-access: L2 hit.
    for (unsigned i = 1; i <= 8; ++i)
        l1.access(0x1000 + i * 4096, 8, false);
    auto warm = l1.access(0x1000, 8, false);
    EXPECT_FALSE(warm.hit);
    EXPECT_EQ(warm.latency, 1u + 8u); // refilled from L2, no memory trip
    EXPECT_GT(l2.hits(), 0u);

    // And the flat cache would have paid the full penalty.
    EXPECT_EQ(flat.access(0x1000, 8, false).latency, 21u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache("t");
    cache.access(0x1000, 8, false);
    cache.flush();
    EXPECT_FALSE(cache.access(0x1000, 8, false).hit);
}

} // namespace
} // namespace infat
