/**
 * @file
 * Unit tests for the runtime library model: both allocators, object
 * registration, the global table, and the subheap pool mechanics.
 */

#include <gtest/gtest.h>

#include <set>

#include "ifp/promote_engine.hh"
#include "runtime/runtime.hh"
#include "support/bitops.hh"
#include "vm/trap.hh"

namespace infat {
namespace {

class RuntimeTest : public ::testing::TestWithParam<AllocatorKind>
{
  protected:
    RuntimeTest()
        : runtime(mem, regs, GetParam(), true),
          engine(mem, nullptr, regs)
    {
        runtime.init(nullptr);
    }

    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime;
    PromoteEngine engine;
};

TEST_P(RuntimeTest, AllocatePromoteRoundTrip)
{
    for (uint64_t size : {8u, 24u, 100u, 1000u, 5000u}) {
        RuntimeCost cost;
        IfpAllocation alloc = runtime.ifpMalloc(size, ir::noLayout,
                                                cost);
        EXPECT_FALSE(alloc.ptr.isLegacy());
        EXPECT_EQ(alloc.bounds, Bounds(alloc.ptr.addr(),
                                       alloc.ptr.addr() + size));
        // The hardware must recover exactly these bounds from memory.
        PromoteResult r = engine.promote(alloc.ptr);
        ASSERT_EQ(r.outcome, PromoteResult::Outcome::Retrieved)
            << "size " << size;
        EXPECT_EQ(r.bounds, alloc.bounds) << "size " << size;
        runtime.ifpFree(alloc.ptr, cost);
    }
}

TEST_P(RuntimeTest, FreedObjectNoLongerPromotes)
{
    RuntimeCost cost;
    IfpAllocation alloc = runtime.ifpMalloc(64, ir::noLayout, cost);
    runtime.ifpFree(alloc.ptr, cost);
    PromoteResult r = engine.promote(alloc.ptr);
    // The stale pointer must not yield valid bounds: wrapped frees
    // erase the metadata (MetaInvalid); the subheap's warm block keeps
    // valid block metadata but the bumped slot lock fails the key
    // comparison (TemporalStale).
    EXPECT_TRUE(r.outcome == PromoteResult::Outcome::MetaInvalid ||
                r.outcome == PromoteResult::Outcome::TemporalStale)
        << toString(r.outcome);
    if (r.outcome == PromoteResult::Outcome::TemporalStale)
        EXPECT_EQ(r.ptr.poison(), Poison::TemporalStale);
}

TEST_P(RuntimeTest, DoubleFreeTraps)
{
    RuntimeCost cost;
    IfpAllocation alloc = runtime.ifpMalloc(64, ir::noLayout, cost);
    runtime.ifpFree(alloc.ptr, cost);
    try {
        runtime.ifpFree(alloc.ptr, cost);
        FAIL() << "double free not detected";
    } catch (const GuestTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::InvalidFree);
        EXPECT_TRUE(trap.isTemporalViolation());
    }
}

TEST_P(RuntimeTest, DoubleFreeOfRecycledSlotTraps)
{
    // Free, reallocate the same slot/chunk, then replay the original
    // (stale) free: the key comparison must catch it even though the
    // slot is live again.
    RuntimeCost cost;
    IfpAllocation a = runtime.ifpMalloc(64, ir::noLayout, cost);
    runtime.ifpFree(a.ptr, cost);
    IfpAllocation b = runtime.ifpMalloc(64, ir::noLayout, cost);
    ASSERT_EQ(b.ptr.addr(), a.ptr.addr()); // LIFO reuse in both models
    EXPECT_NE(b.ptr.generation(), a.ptr.generation());
    EXPECT_THROW(runtime.ifpFree(a.ptr, cost), GuestTrap);
    // The live incarnation still frees cleanly afterwards.
    EXPECT_NO_THROW(runtime.ifpFree(b.ptr, cost));
}

TEST_P(RuntimeTest, InteriorFreeTraps)
{
    RuntimeCost cost;
    IfpAllocation alloc = runtime.ifpMalloc(64, ir::noLayout, cost);
    TaggedPtr interior(alloc.ptr.raw() + 16);
    try {
        runtime.ifpFree(interior, cost);
        FAIL() << "interior free not detected";
    } catch (const GuestTrap &trap) {
        EXPECT_EQ(trap.kind(), TrapKind::InvalidFree);
    }
    EXPECT_NO_THROW(runtime.ifpFree(alloc.ptr, cost));
}

TEST_P(RuntimeTest, NullAndUntaggedFreeEdgeCases)
{
    RuntimeCost cost;
    // free(NULL) is a no-op, as in libc.
    EXPECT_NO_THROW(runtime.ifpFree(TaggedPtr(0), cost));
    // An untagged (legacy) pointer that never came from malloc traps
    // instead of corrupting the glibc-model arena.
    EXPECT_THROW(runtime.ifpFree(TaggedPtr::legacy(0x1234560), cost),
                 GuestTrap);
    // A legacy pointer that IS a live plain allocation frees cleanly.
    GuestAddr plain = runtime.plainMalloc(32, cost);
    EXPECT_NO_THROW(runtime.ifpFree(TaggedPtr::legacy(plain), cost));
    // Baseline free stays glibc-permissive: an invalid plain free is
    // a silent no-op (the corruption is the guest's problem), so
    // uninstrumented bad-case workloads run to completion.
    EXPECT_NO_THROW(runtime.plainFree(0x1234560, cost));
}

TEST_P(RuntimeTest, GenerationWraparoundAliasesAfter16Reuses)
{
    // The 4-bit key wraps: after exactly 16 incarnations a stale
    // pointer's key matches the lock again — the documented residual
    // false-negative window. Crucially the *live* pointer is valid at
    // every step (no false positives from wraparound).
    RuntimeCost cost;
    IfpAllocation first = runtime.ifpMalloc(48, ir::noLayout, cost);
    GuestAddr base = first.ptr.addr();
    runtime.ifpFree(first.ptr, cost);
    for (int reuse = 1; reuse < 16; ++reuse) {
        IfpAllocation a = runtime.ifpMalloc(48, ir::noLayout, cost);
        ASSERT_EQ(a.ptr.addr(), base);
        EXPECT_EQ(a.ptr.generation(),
                  static_cast<uint64_t>(reuse) % 16);
        EXPECT_EQ(engine.promote(a.ptr).outcome,
                  PromoteResult::Outcome::Retrieved);
        runtime.ifpFree(a.ptr, cost);
    }
    IfpAllocation wrapped = runtime.ifpMalloc(48, ir::noLayout, cost);
    ASSERT_EQ(wrapped.ptr.addr(), base);
    EXPECT_EQ(wrapped.ptr.generation(), first.ptr.generation());
    // The 16-generations-stale pointer aliases the live one: promote
    // succeeds (residual FN) and its free replays cleanly. Document
    // the boundary by asserting it.
    EXPECT_EQ(engine.promote(first.ptr).outcome,
              PromoteResult::Outcome::Retrieved);
    EXPECT_NO_THROW(runtime.ifpFree(first.ptr, cost));
}

TEST_P(RuntimeTest, ManyObjectsAreDisjoint)
{
    std::vector<IfpAllocation> allocs;
    RuntimeCost cost;
    for (int i = 0; i < 500; ++i)
        allocs.push_back(runtime.ifpMalloc(48, ir::noLayout, cost));
    for (size_t i = 0; i < allocs.size(); ++i) {
        for (size_t j = i + 1; j < allocs.size(); ++j) {
            EXPECT_TRUE(allocs[i].bounds.upper() <=
                            allocs[j].bounds.lower() ||
                        allocs[j].bounds.upper() <=
                            allocs[i].bounds.lower());
        }
        if (allocs.size() > 50 && GetParam() == AllocatorKind::Subheap)
            break; // O(n^2) check on a sample is enough for subheap
    }
}

INSTANTIATE_TEST_SUITE_P(Allocators, RuntimeTest,
                         ::testing::Values(AllocatorKind::Wrapped,
                                           AllocatorKind::Subheap),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

TEST(RuntimeSchemes, WrappedPicksSchemeBySize)
{
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Wrapped, true);
    runtime.init(nullptr);
    RuntimeCost cost;
    EXPECT_EQ(runtime.ifpMalloc(1008, ir::noLayout, cost).ptr.scheme(),
              Scheme::LocalOffset);
    EXPECT_EQ(runtime.ifpMalloc(1009, ir::noLayout, cost).ptr.scheme(),
              Scheme::GlobalTable);
}

TEST(RuntimeSchemes, SubheapSharesBlocksPerSizeClass)
{
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Subheap, true);
    runtime.init(nullptr);
    RuntimeCost cost;
    IfpAllocation a = runtime.ifpMalloc(40, ir::noLayout, cost);
    IfpAllocation b = runtime.ifpMalloc(40, ir::noLayout, cost);
    IfpAllocation c = runtime.ifpMalloc(48, ir::noLayout, cost);
    ASSERT_EQ(a.ptr.scheme(), Scheme::Subheap);
    unsigned order =
        regs.subheap[a.ptr.subheapCtrlIndex()].blockOrderLog2;
    GuestAddr block_a = roundDown(a.ptr.addr(), 1ULL << order);
    GuestAddr block_b = roundDown(b.ptr.addr(), 1ULL << order);
    GuestAddr block_c = roundDown(c.ptr.addr(), 1ULL << order);
    EXPECT_EQ(block_a, block_b);  // same size class
    EXPECT_NE(block_a, block_c);  // different object size
    EXPECT_EQ(runtime.stats().value("subheap_blocks"), 2u);
}

TEST(RuntimeSchemes, SubheapReleasesEmptyBlocks)
{
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Subheap, true);
    runtime.init(nullptr);
    RuntimeCost cost;
    // Fill more than one block, then free everything.
    std::vector<TaggedPtr> ptrs;
    for (int i = 0; i < 3000; ++i)
        ptrs.push_back(runtime.ifpMalloc(64, ir::noLayout, cost).ptr);
    uint64_t blocks = runtime.stats().value("subheap_blocks");
    EXPECT_GT(blocks, 1u);
    for (TaggedPtr p : ptrs)
        runtime.ifpFree(p, cost);
    // All but the warm block returned to the buddy allocator.
    EXPECT_EQ(runtime.stats().value("subheap_blocks_released"),
              blocks - 1);
}

TEST(RuntimeSchemes, SubheapSlotReuse)
{
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Subheap, true);
    runtime.init(nullptr);
    RuntimeCost cost;
    IfpAllocation a = runtime.ifpMalloc(64, ir::noLayout, cost);
    GuestAddr addr = a.ptr.addr();
    runtime.ifpFree(a.ptr, cost);
    IfpAllocation b = runtime.ifpMalloc(64, ir::noLayout, cost);
    EXPECT_EQ(b.ptr.addr(), addr); // LIFO slot reuse
}

TEST(RuntimeSchemes, GlobalRowsRecycled)
{
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Wrapped, true);
    runtime.init(nullptr);
    RuntimeCost cost;
    // Large objects take global-table rows; freeing returns them.
    std::set<uint64_t> rows;
    for (int round = 0; round < 3; ++round) {
        std::vector<TaggedPtr> ptrs;
        for (int i = 0; i < 2000; ++i) {
            TaggedPtr p =
                runtime.ifpMalloc(2000, ir::noLayout, cost).ptr;
            EXPECT_EQ(p.scheme(), Scheme::GlobalTable);
            rows.insert(p.globalTableIndex());
            ptrs.push_back(p);
        }
        for (TaggedPtr p : ptrs)
            runtime.ifpFree(p, cost);
    }
    // 6000 allocations fit in 4096 rows only if rows are recycled.
    EXPECT_LE(rows.size(), IfpConfig::globalTableRows);
}

TEST(RuntimeSchemes, RegisterObjectBothSchemes)
{
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Wrapped, true);
    runtime.init(nullptr);
    PromoteEngine engine(mem, nullptr, regs);
    RuntimeCost cost;

    IfpAllocation small = runtime.registerObject(0x7000, 100,
                                                 ir::noLayout, cost);
    EXPECT_EQ(small.ptr.scheme(), Scheme::LocalOffset);
    EXPECT_EQ(engine.promote(small.ptr).bounds,
              Bounds(0x7000, 0x7064));
    runtime.deregisterObject(small.ptr, cost);
    EXPECT_EQ(engine.promote(small.ptr).outcome,
              PromoteResult::Outcome::MetaInvalid);

    IfpAllocation big = runtime.registerObject(0x10000, 5000,
                                               ir::noLayout, cost);
    EXPECT_EQ(big.ptr.scheme(), Scheme::GlobalTable);
    EXPECT_EQ(engine.promote(big.ptr).bounds,
              Bounds(0x10000, 0x10000 + 5000));
    runtime.deregisterObject(big.ptr, cost);
    EXPECT_EQ(engine.promote(big.ptr).outcome,
              PromoteResult::Outcome::MetaInvalid);
}

TEST(RuntimeSchemes, MixedAllocatorSelectsDynamically)
{
    // The paper's future-work variant: both allocators live in one
    // process and the runtime picks per allocation (§4.2.1).
    GuestMemory mem;
    IfpControlRegs regs;
    Runtime runtime(mem, regs, AllocatorKind::Mixed, true);
    runtime.init(nullptr);
    PromoteEngine engine(mem, nullptr, regs);
    RuntimeCost cost;

    IfpAllocation small = runtime.ifpMalloc(64, ir::noLayout, cost);
    EXPECT_EQ(small.ptr.scheme(), Scheme::Subheap);
    IfpAllocation big = runtime.ifpMalloc(4096, ir::noLayout, cost);
    EXPECT_EQ(big.ptr.scheme(), Scheme::GlobalTable);
    IfpAllocation medium = runtime.ifpMalloc(600, ir::noLayout, cost);
    EXPECT_EQ(medium.ptr.scheme(), Scheme::LocalOffset);

    // Promotion and free dispatch correctly for all three.
    for (const IfpAllocation &alloc : {small, big, medium}) {
        EXPECT_EQ(engine.promote(alloc.ptr).bounds, alloc.bounds);
        runtime.ifpFree(alloc.ptr, cost);
    }
}

TEST(RuntimeSchemes, PaddedSlotSize)
{
    EXPECT_EQ(Runtime::paddedSlotSize(1), 32u);   // 16 + metadata
    EXPECT_EQ(Runtime::paddedSlotSize(16), 32u);
    EXPECT_EQ(Runtime::paddedSlotSize(17), 48u);
    EXPECT_EQ(Runtime::paddedSlotSize(1008), 1024u);
    // Above the local-offset limit: no metadata tail needed.
    EXPECT_EQ(Runtime::paddedSlotSize(1009), 1024u);
}

} // namespace
} // namespace infat
