/**
 * @file
 * Integration tests over the 18 evaluation workloads.
 *
 * Every workload must produce the *same checksum* in all five
 * configurations — the instrumentation may change cost, never
 * behaviour — and the per-workload signature behaviours the harness
 * relies on (promote traffic, layout-table coverage, narrowing
 * success/failure) are asserted where the paper calls them out.
 */

#include <gtest/gtest.h>

#include "workloads/harness.hh"

namespace infat {
namespace workloads {
namespace {

class WorkloadConsistency : public ::testing::TestWithParam<Workload>
{
};

TEST_P(WorkloadConsistency, SameChecksumInAllConfigs)
{
    const Workload &w = GetParam();
    RunResult base = runWorkload(w, Config::Baseline);
    for (Config config :
         {Config::Subheap, Config::Wrapped, Config::SubheapNoPromote,
          Config::WrappedNoPromote}) {
        RunResult run = runWorkload(w, config);
        EXPECT_EQ(run.checksum, base.checksum)
            << w.name << " under " << toString(config);
        EXPECT_GE(run.instructions, base.instructions / 2)
            << "instrumented run suspiciously short";
    }
}

TEST_P(WorkloadConsistency, InstrumentedRunsHavePromotes)
{
    const Workload &w = GetParam();
    RunResult run = runWorkload(w, Config::Subheap);
    EXPECT_GT(run.promotes, 0u) << w.name;
    EXPECT_GT(run.heapObjects + run.localObjects + run.globalObjects,
              0u)
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadConsistency, ::testing::ValuesIn(all()),
    [](const ::testing::TestParamInfo<Workload> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(WorkloadBehaviours, HealthSubobjectNarrowingSucceeds)
{
    RunResult run = runWorkload("health", Config::Subheap);
    EXPECT_GT(run.narrowAttempts, 0u);
    EXPECT_GT(run.narrowSuccess, 0u);
    EXPECT_EQ(run.narrowFail, 0u);
}

TEST(WorkloadBehaviours, CoremarkNarrowingFails)
{
    RunResult run = runWorkload("coremark", Config::Subheap);
    EXPECT_GT(run.narrowAttempts, 0u);
    EXPECT_EQ(run.narrowSuccess, 0u);
    EXPECT_GT(run.narrowFail, 0u);
}

TEST(WorkloadBehaviours, Bzip2NarrowingFails)
{
    RunResult run = runWorkload("bzip2", Config::Subheap);
    EXPECT_GT(run.narrowAttempts, 0u);
    EXPECT_EQ(run.narrowSuccess, 0u);
}

TEST(WorkloadBehaviours, WolfcryptHasNoLayoutTables)
{
    RunResult run = runWorkload("wolfcrypt-dh", Config::Subheap);
    EXPECT_GT(run.heapObjects, 0u);
    EXPECT_EQ(run.heapObjectsWithLayout, 0u);
}

TEST(WorkloadBehaviours, TreeaddHeapObjectsHaveLayouts)
{
    RunResult run = runWorkload("treeadd", Config::Subheap);
    EXPECT_GT(run.heapObjects, 0u);
    EXPECT_GT(run.heapObjectsWithLayout, 0u);
}

TEST(WorkloadBehaviours, AnagramPromotesLegacyPointers)
{
    RunResult run = runWorkload("anagram", Config::Subheap);
    EXPECT_GT(run.bypassLegacy, 0u);
}

TEST(WorkloadBehaviours, TreeaddBypassesNullPointers)
{
    RunResult run = runWorkload("treeadd", Config::Subheap);
    EXPECT_GT(run.bypassNull, 0u);
}

TEST(WorkloadBehaviours, BhIsLocalObjectDominated)
{
    RunResult run = runWorkload("bh", Config::Subheap);
    EXPECT_GT(run.localObjects, run.heapObjects);
}

TEST(WorkloadBehaviours, SjengUsesGlobalTableForLargeGlobal)
{
    RunResult run = runWorkload("sjeng", Config::Subheap);
    EXPECT_GE(run.globalObjects, 2u); // board + history
    EXPECT_GT(run.localObjects, 100u); // per-node move lists
}

} // namespace
} // namespace workloads
} // namespace infat
