/**
 * @file
 * Unit tests for the support substrate: bit ops, SipHash, RNG, stats,
 * and the table formatter.
 */

#include <gtest/gtest.h>

#include "support/bitops.hh"
#include "support/rng.hh"
#include "support/siphash.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace infat {
namespace {

TEST(BitOps, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(bits(0xabcd1234u, 15, 8), 0x12u);
    EXPECT_EQ(bits(~0ULL, 63, 62), 3u);
}

TEST(BitOps, InsertBitsRoundTrip)
{
    uint64_t v = 0;
    v = insertBits(v, 63, 62, 2);
    v = insertBits(v, 61, 60, 1);
    v = insertBits(v, 59, 48, 0xabc);
    EXPECT_EQ(bits(v, 63, 62), 2u);
    EXPECT_EQ(bits(v, 61, 60), 1u);
    EXPECT_EQ(bits(v, 59, 48), 0xabcu);
    // Inserting must not disturb neighbours.
    v = insertBits(v, 61, 60, 3);
    EXPECT_EQ(bits(v, 63, 62), 2u);
    EXPECT_EQ(bits(v, 59, 48), 0xabcu);
}

TEST(BitOps, SignExtend)
{
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0xffffffff, 32), -1);
    EXPECT_EQ(sext(0x1ffffffff, 32), -1); // high garbage ignored
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(0, 16), 0u);
    EXPECT_EQ(roundUp(1, 16), 16u);
    EXPECT_EQ(roundUp(16, 16), 16u);
    EXPECT_EQ(roundDown(31, 16), 16u);
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(1025), 11u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(SipHash, KnownVector)
{
    // Reference test vector from the SipHash paper: key =
    // 000102...0f, input = 000102...0e.
    uint8_t data[15];
    for (unsigned i = 0; i < 15; ++i)
        data[i] = static_cast<uint8_t>(i);
    uint64_t k0 = 0x0706050403020100ULL;
    uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
    EXPECT_EQ(siphash24(data, sizeof(data), k0, k1),
              0xa129ca6149be45e5ULL);
}

TEST(SipHash, Mac48Properties)
{
    uint64_t m = mac48(1, 2, 3, 4);
    EXPECT_EQ(m >> 48, 0u); // truncated
    EXPECT_EQ(m, mac48(1, 2, 3, 4)); // deterministic
    EXPECT_NE(m, mac48(1, 2, 3, 5)); // key sensitive
    EXPECT_NE(m, mac48(2, 1, 3, 4)); // order sensitive
    uint64_t words[2] = {1, 2};
    EXPECT_EQ(m, mac48Words(words, 2, 3, 4));
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespectBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Stats, CountersAndDump)
{
    StatGroup group("test");
    group.counter("a")++;
    group.counter("a") += 4;
    EXPECT_EQ(group.value("a"), 5u);
    EXPECT_EQ(group.value("missing"), 0u);
    EXPECT_NE(group.dump().find("test.a 5"), std::string::npos);
    group.resetAll();
    EXPECT_EQ(group.value("a"), 0u);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Table, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", TextTable::cell(uint64_t{42})});
    table.addRow({"longer-name", TextTable::cellPct(0.5, 1)});
    std::string out = table.render();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

} // namespace
} // namespace infat
