/**
 * @file
 * Unit tests for the support substrate: bit ops, SipHash, RNG, stats,
 * leveled logging, and the table formatter.
 */

#include <gtest/gtest.h>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/siphash.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace infat {
namespace {

TEST(BitOps, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(bits(0xabcd1234u, 15, 8), 0x12u);
    EXPECT_EQ(bits(~0ULL, 63, 62), 3u);
}

TEST(BitOps, InsertBitsRoundTrip)
{
    uint64_t v = 0;
    v = insertBits(v, 63, 62, 2);
    v = insertBits(v, 61, 60, 1);
    v = insertBits(v, 59, 48, 0xabc);
    EXPECT_EQ(bits(v, 63, 62), 2u);
    EXPECT_EQ(bits(v, 61, 60), 1u);
    EXPECT_EQ(bits(v, 59, 48), 0xabcu);
    // Inserting must not disturb neighbours.
    v = insertBits(v, 61, 60, 3);
    EXPECT_EQ(bits(v, 63, 62), 2u);
    EXPECT_EQ(bits(v, 59, 48), 0xabcu);
}

TEST(BitOps, SignExtend)
{
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0xffffffff, 32), -1);
    EXPECT_EQ(sext(0x1ffffffff, 32), -1); // high garbage ignored
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(0, 16), 0u);
    EXPECT_EQ(roundUp(1, 16), 16u);
    EXPECT_EQ(roundUp(16, 16), 16u);
    EXPECT_EQ(roundDown(31, 16), 16u);
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(1025), 11u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(SipHash, KnownVector)
{
    // Reference test vector from the SipHash paper: key =
    // 000102...0f, input = 000102...0e.
    uint8_t data[15];
    for (unsigned i = 0; i < 15; ++i)
        data[i] = static_cast<uint8_t>(i);
    uint64_t k0 = 0x0706050403020100ULL;
    uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
    EXPECT_EQ(siphash24(data, sizeof(data), k0, k1),
              0xa129ca6149be45e5ULL);
}

TEST(SipHash, Mac48Properties)
{
    uint64_t m = mac48(1, 2, 3, 4);
    EXPECT_EQ(m >> 48, 0u); // truncated
    EXPECT_EQ(m, mac48(1, 2, 3, 4)); // deterministic
    EXPECT_NE(m, mac48(1, 2, 3, 5)); // key sensitive
    EXPECT_NE(m, mac48(2, 1, 3, 4)); // order sensitive
    uint64_t words[2] = {1, 2};
    EXPECT_EQ(m, mac48Words(words, 2, 3, 4));
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespectBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Stats, CountersAndDump)
{
    StatGroup group("test");
    group.counter("a")++;
    group.counter("a") += 4;
    EXPECT_EQ(group.value("a"), 5u);
    EXPECT_EQ(group.value("missing"), 0u);
    EXPECT_NE(group.dump().find("test.a 5"), std::string::npos);
    group.resetAll();
    EXPECT_EQ(group.value("a"), 0u);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Stats, Log2BucketBoundaries)
{
    // Bucket 0 counts only the value 0; bucket i (i >= 1) covers
    // [2^(i-1), 2^i). Boundary values 2^i-1 / 2^i must land on the
    // two sides of each edge.
    Histogram h = Histogram::log2(8);
    h.sample(0);
    EXPECT_EQ(h.bucketCount(0), 1u);

    h.sample(1); // [1, 2) -> bucket 1
    EXPECT_EQ(h.bucketCount(1), 1u);

    for (unsigned i = 2; i < 8; ++i) {
        uint64_t lo = 1ULL << (i - 1);
        h.sample(lo - 1); // top of bucket i-1
        h.sample(lo);     // bottom of bucket i
    }
    // Each bucket i in [1, 7) got its lower edge plus the top of its
    // range; bucket 7 only its lower edge so far.
    for (unsigned i = 1; i < 7; ++i)
        EXPECT_EQ(h.bucketCount(i), 2u) << "bucket " << i;
    EXPECT_EQ(h.bucketCount(7), 1u);
    EXPECT_EQ(h.overflow(), 0u);

    // Edges reported by the histogram agree with the shape.
    EXPECT_EQ(h.bucketLo(0), 0u);
    EXPECT_EQ(h.bucketHi(0), 1u);
    EXPECT_EQ(h.bucketLo(3), 4u);
    EXPECT_EQ(h.bucketHi(3), 8u);
}

TEST(Stats, Log2TopBucketSaturation)
{
    Histogram h = Histogram::log2(4); // top bucket covers [4, 8)
    h.sample(7); // still in-range
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 0u);

    // At or above the last bucket's upper edge: overflow, but still
    // part of count/sum/max so means stay exact.
    h.sample(8);
    h.sample(~0ULL);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 7u + 8u + ~0ULL);
    EXPECT_EQ(h.maxValue(), ~0ULL);
}

TEST(Stats, LinearUnderflowOverflow)
{
    Histogram h = Histogram::linear(10, 5, 2); // [10,15) [15,20)
    h.sample(9);  // below the first bucket
    h.sample(10); // first bucket's inclusive lower edge
    h.sample(14);
    h.sample(19); // top of the last bucket
    h.sample(20); // exactly the exclusive upper edge
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.minValue(), 9u);
    EXPECT_EQ(h.maxValue(), 20u);
}

TEST(Stats, FormulaZeroDenominator)
{
    StatGroup group("test");
    Counter &num = group.counter("num");
    Counter &den = group.counter("den");
    group.formula("ratio", [&] {
        return static_cast<double>(num.value()) /
               static_cast<double>(den.value());
    });
    // 0/0 evaluates non-finite; the registry reports 0.0 instead of
    // leaking a NaN into dumps and JSON exports.
    EXPECT_EQ(group.formulaValue("ratio"), 0.0);
    num += 5;
    EXPECT_EQ(group.formulaValue("ratio"), 0.0); // 5/0 -> inf -> 0
    den += 2;
    EXPECT_DOUBLE_EQ(group.formulaValue("ratio"), 2.5);
    EXPECT_EQ(group.formulaValue("no-such-formula"), 0.0);
}

TEST(Logging, LevelThreshold)
{
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
    setLogLevel(saved);
}

TEST(Table, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", TextTable::cell(uint64_t{42})});
    table.addRow({"longer-name", TextTable::cellPct(0.5, 1)});
    std::string out = table.render();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("50.0%"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

} // namespace
} // namespace infat
