/**
 * @file
 * Unit tests for the compiler: escape analysis and the instrumentation
 * pass (GEP lowering, promote insertion, allocator rewriting, dead
 * tag-update elision, callee-saved bounds accounting).
 */

#include <gtest/gtest.h>

#include "compiler/escape.hh"
#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "vm/libc_model.hh"

namespace infat {
namespace {

using namespace ir;

/** Count instructions of one opcode across a function. */
size_t
countOps(const Function &func, Opcode op)
{
    size_t n = 0;
    for (const BasicBlock &block : func.blocks()) {
        for (const Instr &instr : block.instrs)
            n += instr.op == op;
    }
    return n;
}

TEST(Escape, AllocaEscapesWhenStored)
{
    Module m;
    TypeContext &tc = m.types();
    GlobalId g = m.addGlobal("slot", tc.ptr(tc.i64()));
    FunctionBuilder fb(m, "f", {}, tc.voidTy());
    Value buf = fb.stackAlloc(tc.i64(), 4);
    fb.store(buf, fb.globalAddr(g));
    fb.retVoid();

    ModuleEscapes escapes = analyzeEscapes(m);
    EXPECT_EQ(escapes.functions[0].escapingAllocas.size(), 1u);
    EXPECT_TRUE(escapes.functions[0].escapingAllocas.count(buf.reg));
    // Storing *into* the global is a use of its address, not an
    // escape: the global itself needs no metadata (paper §4.2.2).
    EXPECT_FALSE(escapes.escapingGlobals.count(g));
}

TEST(Escape, AllocaEscapesWhenPassedOrReturned)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "takes", {tc.ptr(tc.i64())}, tc.voidTy());
        fb.retVoid();
    }
    {
        FunctionBuilder fb(m, "passes", {}, tc.voidTy());
        Value buf = fb.stackAlloc(tc.i64(), 4);
        fb.call("takes", {buf});
        fb.retVoid();
    }
    {
        FunctionBuilder fb(m, "returns", {}, tc.ptr(tc.i64()));
        Value buf = fb.stackAlloc(tc.i64(), 4);
        fb.ret(buf);
    }
    ModuleEscapes escapes = analyzeEscapes(m);
    const Function *passes = m.functionByName("passes");
    const Function *returns = m.functionByName("returns");
    EXPECT_EQ(escapes.functions[passes->id()].escapingAllocas.size(),
              1u);
    EXPECT_EQ(escapes.functions[returns->id()].escapingAllocas.size(),
              1u);
}

TEST(Escape, DynamicIndexForcesInstrumentation)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "f", {tc.i64()}, tc.i64());
    Value buf = fb.stackAlloc(tc.i64(), 4);
    Value v = fb.load(fb.elemPtr(buf, fb.arg(0))); // runtime index
    fb.ret(v);
    ModuleEscapes escapes = analyzeEscapes(m);
    EXPECT_EQ(escapes.functions[m.functionByName("f")->id()]
                  .escapingAllocas.size(),
              1u);
}

TEST(Escape, PrivateAllocaStaysUninstrumented)
{
    Module m;
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "f", {}, tc.i64());
    Value buf = fb.stackAlloc(tc.i64(), 4);
    fb.store(fb.iconst(1), fb.elemPtr(buf, int64_t{0}));
    fb.ret(fb.load(fb.elemPtr(buf, int64_t{3})));
    ModuleEscapes escapes = analyzeEscapes(m);
    EXPECT_TRUE(escapes.functions[0].escapingAllocas.empty());
}

TEST(Escape, DerivedPointersCarryTheTaint)
{
    Module m;
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    GlobalId g = m.addGlobal("slot", tc.ptr(tc.i64()));
    FunctionBuilder fb(m, "f", {}, tc.voidTy());
    Value obj = fb.stackAlloc(s);
    fb.store(fb.fieldPtr(obj, 1), fb.globalAddr(g)); // field escapes
    fb.retVoid();
    ModuleEscapes escapes = analyzeEscapes(m);
    EXPECT_TRUE(escapes.functions[0].escapingAllocas.count(obj.reg));
}

TEST(Instrument, MallocRewritingTypedAndUntyped)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value typed = fb.mallocTyped(s);
    Value untyped = fb.call("malloc", {fb.iconst(64)});
    fb.freePtr(typed);
    fb.call("free", {untyped});
    fb.ret(fb.iconst(0));

    InstrumentResult result = instrumentModule(m);
    const Function *main_fn = m.functionByName("main");
    EXPECT_EQ(countOps(*main_fn, Opcode::IfpMallocTyped), 2u);
    EXPECT_EQ(countOps(*main_fn, Opcode::IfpFree), 2u);
    EXPECT_EQ(countOps(*main_fn, Opcode::MallocTyped), 0u);
    EXPECT_EQ(result.stats.mallocSitesTyped, 1u);
    EXPECT_EQ(result.stats.mallocSitesUntyped, 1u);

    // The typed site carries a layout id, the untyped one does not.
    std::vector<LayoutId> layouts;
    for (const BasicBlock &block : main_fn->blocks()) {
        for (const Instr &instr : block.instrs) {
            if (instr.op == Opcode::IfpMallocTyped)
                layouts.push_back(instr.layout);
        }
    }
    ASSERT_EQ(layouts.size(), 2u);
    EXPECT_NE(layouts[0], noLayout);
    EXPECT_EQ(layouts[1], noLayout);
}

TEST(Instrument, PromoteFollowsPointerLoadsOnly)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    GlobalId g = m.addGlobal("slot", tc.ptr(tc.i64()));
    GlobalId h = m.addGlobal("num", tc.i64());
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value p = fb.load(fb.globalAddr(g)); // pointer load -> promote
    Value n = fb.load(fb.globalAddr(h)); // integer load -> no promote
    (void)p;
    fb.ret(n);
    instrumentModule(m);
    EXPECT_EQ(countOps(*m.functionByName("main"), Opcode::Promote), 1u);
}

TEST(Instrument, DeadTagUpdatesElided)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    GlobalId g = m.addGlobal("slot", tc.ptr(tc.i64()));
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value obj = fb.mallocTyped(s);
    // Immediately-dereferenced field pointer: ifpadd only.
    fb.storeField(obj, 0, fb.iconst(1));
    // Escaping field pointer: full ifpadd + ifpidx + ifpbnd.
    fb.store(fb.fieldPtr(obj, 1), fb.globalAddr(g));
    fb.ret(fb.iconst(0));
    instrumentModule(m);
    const Function *main_fn = m.functionByName("main");
    EXPECT_EQ(countOps(*main_fn, Opcode::IfpAdd), 2u);
    EXPECT_EQ(countOps(*main_fn, Opcode::IfpIdx), 1u);
}

TEST(Instrument, DeregisterEmittedOnEveryReturnPath)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "sink", {tc.ptr(tc.i64())}, tc.voidTy());
        fb.retVoid();
    }
    FunctionBuilder fb(m, "f", {tc.i64()}, tc.i64());
    Value buf = fb.stackAlloc(tc.i64(), 4);
    fb.call("sink", {buf});
    BlockId a = fb.newBlock("a");
    BlockId b = fb.newBlock("b");
    fb.br(fb.arg(0), a, b);
    fb.setBlock(a);
    fb.ret(fb.iconst(1));
    fb.setBlock(b);
    fb.ret(fb.iconst(2));
    instrumentModule(m);
    const Function *f = m.functionByName("f");
    EXPECT_EQ(countOps(*f, Opcode::RegisterObj), 1u);
    EXPECT_EQ(countOps(*f, Opcode::DeregisterObj), 2u);
}

TEST(Instrument, SavedBoundsRegsComputed)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    {
        FunctionBuilder fb(m, "helper", {}, tc.voidTy());
        fb.retVoid();
    }
    FunctionBuilder fb(m, "f", {tc.ptr(tc.i64())}, tc.i64());
    Value p = fb.arg(0); // pointer live across the call
    fb.call("helper");
    fb.ret(fb.load(fb.elemPtr(p, int64_t{0})));
    instrumentModule(m);
    EXPECT_GE(m.functionByName("f")->savedBoundsRegs(), 1u);
    // A leaf function saves nothing.
    EXPECT_EQ(m.functionByName("helper")->savedBoundsRegs(), 0u);
}

TEST(Instrument, UninstrumentedFunctionsLeftAlone)
{
    Module m;
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *s = tc.createStruct("S", {tc.i64(), tc.i64()});
    FunctionBuilder fb(m, "legacy", {}, tc.i64());
    fb.function()->setInstrumented(false);
    Value obj = fb.mallocTyped(s);
    Value v = fb.loadField(obj, 0);
    fb.ret(v);
    instrumentModule(m);
    const Function *legacy = m.functionByName("legacy");
    EXPECT_EQ(countOps(*legacy, Opcode::MallocTyped), 1u);
    EXPECT_EQ(countOps(*legacy, Opcode::GepField), 1u);
    EXPECT_EQ(countOps(*legacy, Opcode::Promote), 0u);
}

} // namespace
} // namespace infat
