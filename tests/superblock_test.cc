/**
 * @file
 * Tests for the superblock interpreter (vm/superblock.hh): engine
 * equivalence on predecode edge cases (single-block functions,
 * self-looping blocks, calls inside blocks, mixed instrumented /
 * native call graphs), exact trap preservation under fusion and
 * redundant-check elimination, instruction-budget equality across the
 * block-entry and mid-block bail-out paths, and the GuestMemory
 * micro-TLB invalidation on unmap.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "mem/guest_memory.hh"
#include "support/profile.hh"
#include "support/trace.hh"
#include "vm/forensics.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

namespace infat {
namespace {

using namespace ir;

using BuildFn = std::function<void(Module &)>;

struct EngineRun
{
    bool trapped = false;
    std::string trapWhat;
    TrapKind trapKind = TrapKind::WorkloadAssert;
    uint64_t checksum = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    std::array<uint64_t,
               static_cast<size_t>(Machine::CycleClass::NumClasses)>
        classes{};
    StatSnapshot stats;
    /** Forensics report attached to the trap (null when not trapped
     *  or the machine did not build one). */
    std::shared_ptr<const TrapReport> report;
};

struct EngineOptions
{
    bool instrument = false;
    bool superblocks = true;
    bool fusion = true;
    bool checkElim = true;
    AllocatorKind allocator = AllocatorKind::Wrapped;
    uint64_t maxInstructions = 20'000'000'000ULL;
    bool attachTracer = false;
    /** Attach a GuestProfiler (host-side only; engine stays active). */
    bool attachProfiler = false;
    /** Enable trap-forensics allocation records (host-side only). */
    bool forensics = false;
    // Tiered execution (vm/tier.hh). Host-side only; every simulated
    // observable must be identical across tiers.
    bool threadedDispatch = true;
    bool jit = true;
    uint32_t jitThreshold = 64;
};

EngineRun
runEngine(const BuildFn &build, const EngineOptions &opts)
{
    Module m;
    build(m);
    InstrumentResult inst;
    if (opts.instrument) {
        inst = instrumentModule(m);
        verifyOrDie(m);
    }
    VmConfig config;
    config.instrumented = opts.instrument;
    config.allocator = opts.allocator;
    config.superblocks = opts.superblocks;
    config.superblockFusion = opts.fusion;
    config.superblockCheckElim = opts.checkElim;
    config.maxInstructions = opts.maxInstructions;
    config.forensics = opts.forensics;
    config.threadedDispatch = opts.threadedDispatch;
    config.jit = opts.jit;
    config.jitThreshold = opts.jitThreshold;
    CollectTraceSink sink;
    Machine machine(m, opts.instrument ? &inst.layouts : nullptr,
                    config);
    installLibc(machine);
    if (opts.attachTracer)
        machine.setTraceSink(&sink);
    GuestProfiler profiler;
    if (opts.attachProfiler) {
        profiler.setSampleInterval(64);
        machine.setProfiler(&profiler);
    }

    EngineRun run;
    try {
        run.checksum = machine.run();
    } catch (const GuestTrap &trap) {
        run.trapped = true;
        run.trapWhat = trap.what();
        run.trapKind = trap.kind();
        run.report = trap.reportPtr();
    }
    run.instructions = machine.instructions();
    run.cycles = machine.cycles();
    for (size_t c = 0; c < run.classes.size(); ++c)
        run.classes[c] =
            machine.classCycles(static_cast<Machine::CycleClass>(c));
    machine.syncStats();
    run.stats = machine.statRegistry().snapshot();
    return run;
}

/** Compare two runs' snapshots, skipping the host-engine groups
 *  (vm.superblock: predecode shape; vm.tier: promotion/JIT activity —
 *  both describe how the host executed, not what was simulated). */
void
expectStatsEqual(const StatSnapshot &a, const StatSnapshot &b)
{
    for (const StatSnapshot::Group &ga : a.groups) {
        if (ga.name == "vm.superblock" || ga.name == "vm.tier")
            continue;
        const StatSnapshot::Group *gb = b.findGroup(ga.name);
        ASSERT_NE(gb, nullptr) << "missing group " << ga.name;
        EXPECT_EQ(ga.scalars, gb->scalars) << "group " << ga.name;
        EXPECT_EQ(ga.formulas, gb->formulas) << "group " << ga.name;
        ASSERT_EQ(ga.histograms.size(), gb->histograms.size())
            << "group " << ga.name;
        for (const auto &[name, ha] : ga.histograms) {
            auto it = gb->histograms.find(name);
            ASSERT_NE(it, gb->histograms.end())
                << ga.name << "." << name;
            EXPECT_EQ(ha.count, it->second.count)
                << ga.name << "." << name;
            EXPECT_EQ(ha.sum, it->second.sum)
                << ga.name << "." << name;
        }
        ASSERT_EQ(ga.distributions.size(), gb->distributions.size())
            << "group " << ga.name;
        for (const auto &[name, da] : ga.distributions) {
            auto it = gb->distributions.find(name);
            ASSERT_NE(it, gb->distributions.end())
                << ga.name << "." << name;
            EXPECT_EQ(da.count, it->second.count)
                << ga.name << "." << name;
            EXPECT_EQ(da.sum, it->second.sum)
                << ga.name << "." << name;
            EXPECT_EQ(da.min, it->second.min)
                << ga.name << "." << name;
            EXPECT_EQ(da.max, it->second.max)
                << ga.name << "." << name;
        }
    }
}

/**
 * Run @p build under the general interpreter and under the superblock
 * engine (and its fusion/check-elim ablations); every simulated
 * observable must be bit-identical.
 */
void
expectEnginesAgree(const BuildFn &build, bool instrument,
                   uint64_t max_instructions = 20'000'000'000ULL)
{
    EngineOptions base;
    base.instrument = instrument;
    base.maxInstructions = max_instructions;

    EngineOptions general = base;
    general.superblocks = false;
    EngineRun ref = runEngine(build, general);

    struct Variant
    {
        const char *name;
        bool fusion;
        bool checkElim;
        bool profiler;
        bool threaded;
        bool jit;
        uint32_t jitThreshold;
    };
    const Variant variants[] = {
        {"superblock", true, true, false, false, false, 64},
        {"superblock-nofuse", false, true, false, false, false, 64},
        {"superblock-noelim", true, false, false, false, false, 64},
        {"superblock-base", false, false, false, false, false, 64},
        // Tier 1 (direct-threaded dispatch) and tier 2 (template JIT,
        // threshold 2 so even short tests promote) over the same
        // record streams: bit-identical by construction, gated here.
        {"threaded", true, true, false, true, false, 64},
        {"jit", true, true, false, true, true, 2},
        {"jit-base", false, false, false, true, true, 2},
        // The guest profiler and forensics records are host-side
        // only: attaching them must not perturb any simulated
        // observable, in either engine (with the profiler attached
        // the JIT stays cold — the interpreter path must still match).
        {"superblock-profiled", true, true, true, false, false, 64},
        {"jit-profiled", true, true, true, true, true, 2},
        {"general-profiled", true, true, true, false, false, 64},
    };
    for (const Variant &v : variants) {
        EngineOptions opts = base;
        opts.fusion = v.fusion;
        opts.checkElim = v.checkElim;
        opts.attachProfiler = v.profiler;
        opts.forensics = v.profiler;
        opts.threadedDispatch = v.threaded;
        opts.jit = v.jit;
        opts.jitThreshold = v.jitThreshold;
        if (std::string(v.name) == "general-profiled")
            opts.superblocks = false;
        EngineRun got = runEngine(build, opts);
        SCOPED_TRACE(v.name);
        EXPECT_EQ(ref.trapped, got.trapped);
        EXPECT_EQ(ref.trapWhat, got.trapWhat);
        if (ref.trapped && got.trapped) {
            EXPECT_EQ(ref.trapKind, got.trapKind);
        }
        EXPECT_EQ(ref.checksum, got.checksum);
        EXPECT_EQ(ref.instructions, got.instructions);
        EXPECT_EQ(ref.cycles, got.cycles);
        EXPECT_EQ(ref.classes, got.classes);
        expectStatsEqual(ref.stats, got.stats);
        expectStatsEqual(got.stats, ref.stats);
    }
}

// ---------------------------------------------------------------------
// Predecode edge cases
// ---------------------------------------------------------------------

TEST(Superblock, SingleBlockFunction)
{
    // Straight-line arithmetic, one block, no memory: the whole
    // function is one pure run flushed by the Ret record.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value a = fb.add(fb.iconst(40), fb.iconst(2));
        Value b = fb.mul(a, fb.iconst(3));
        Value c = fb.xor_(b, fb.iconst(0x55));
        Value d = fb.select(fb.sgt(c, fb.iconst(0)), c, a);
        fb.ret(fb.sub(d, fb.ashr(b, fb.iconst(1))));
    };
    expectEnginesAgree(build, false);
    expectEnginesAgree(build, true);
}

TEST(Superblock, SelfLoopingBlock)
{
    // One block that branches back to itself: the backward `rest` pass
    // and the block-entry budget guard see the same block repeatedly.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value i = fb.var(tc.i64());
        Value sum = fb.var(tc.i64());
        fb.assign(i, fb.iconst(0));
        fb.assign(sum, fb.iconst(0));
        BlockId loop = fb.newBlock("loop");
        BlockId done = fb.newBlock("done");
        fb.jmp(loop);
        fb.setBlock(loop);
        fb.assign(sum, fb.add(sum, i));
        fb.assign(i, fb.addImm(i, 1));
        fb.br(fb.slt(i, fb.iconst(1000)), loop, done);
        fb.setBlock(done);
        fb.ret(sum);
    };
    expectEnginesAgree(build, false);
    expectEnginesAgree(build, true);
}

TEST(Superblock, CallsInsideBlocks)
{
    // Calls are mid-block sync records (and budget barriers); the
    // call graph mixes direct calls, an indirect call, and native
    // (libc-model) allocation calls — the instrumented/uninstrumented
    // engine boundary.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        {
            FunctionBuilder fb(m, "leaf", {tc.i64()}, tc.i64());
            fb.ret(fb.mulImm(fb.arg(0), 3));
        }
        {
            FunctionBuilder fb(m, "mid", {tc.i64()}, tc.i64());
            Value a = fb.call("leaf", {fb.arg(0)});
            Value b = fb.call("leaf", {a});
            fb.ret(fb.add(a, b));
        }
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value x = fb.call("mid", {fb.iconst(7)});
        Value target = fb.funcAddr("leaf");
        Value y = fb.callPtr(target, tc.i64(), {x});
        Value buf = fb.mallocTyped(tc.i64(), fb.iconst(4));
        fb.store(y, buf);
        Value z = fb.load(buf);
        fb.freePtr(buf);
        fb.ret(fb.add(z, x));
    };
    expectEnginesAgree(build, false);
    expectEnginesAgree(build, true);
}

TEST(Superblock, FusionPatternsViaStructs)
{
    // Instrumented struct + array code produces the fusable pairs the
    // instrumentation emits (gep+load/store, ifp ops + access).
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        const Type *node = tc.createStruct("node", {tc.i64(), tc.i64()});
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value arr = fb.mallocTyped(node, fb.iconst(8));
        Value i = fb.var(tc.i64());
        fb.assign(i, fb.iconst(0));
        BlockId loop = fb.newBlock("loop");
        BlockId done = fb.newBlock("done");
        fb.jmp(loop);
        fb.setBlock(loop);
        Value p = fb.elemPtr(arr, i);
        fb.storeField(p, 0, i);
        fb.storeField(p, 1, fb.mulImm(i, 5));
        fb.assign(i, fb.addImm(i, 1));
        fb.br(fb.slt(i, fb.iconst(8)), loop, done);
        fb.setBlock(done);
        Value sum = fb.var(tc.i64());
        fb.assign(sum, fb.iconst(0));
        Value j = fb.var(tc.i64());
        fb.assign(j, fb.iconst(0));
        BlockId loop2 = fb.newBlock("loop2");
        BlockId done2 = fb.newBlock("done2");
        fb.jmp(loop2);
        fb.setBlock(loop2);
        Value q = fb.elemPtr(arr, j);
        fb.assign(sum, fb.add(sum, fb.loadField(q, 0)));
        fb.assign(sum, fb.add(sum, fb.loadField(q, 1)));
        fb.assign(j, fb.addImm(j, 1));
        fb.br(fb.slt(j, fb.iconst(8)), loop2, done2);
        fb.setBlock(done2);
        fb.freePtr(arr);
        fb.ret(sum);
    };
    expectEnginesAgree(build, false);
    expectEnginesAgree(build, true);
}

// ---------------------------------------------------------------------
// Trap preservation
// ---------------------------------------------------------------------

TEST(Superblock, CheckElimPreservesOutOfBoundsTrap)
{
    // In-bounds accesses warm the in-block check cache; the final
    // access walks past the allocation through the same kind of
    // address expression and must still trap, with the identical
    // message, in every engine variant.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value arr = fb.mallocTyped(tc.i64(), fb.iconst(4));
        fb.store(fb.iconst(1), fb.elemPtr(arr, int64_t{0}));
        fb.store(fb.iconst(2), fb.elemPtr(arr, int64_t{1}));
        Value v = fb.load(fb.elemPtr(arr, int64_t{0}));
        fb.store(v, fb.elemPtr(arr, int64_t{6})); // out of bounds
        fb.ret(v);
    };
    expectEnginesAgree(build, true);
}

TEST(Superblock, RepeatedAccessSameRegisterStillChecksGrowth)
{
    // The loop body accesses elemPtr(arr, i) and then advances i: the
    // kill set must invalidate the cached check fact keyed on i, so
    // the eventual out-of-bounds iteration traps identically instead
    // of riding a stale elision.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value arr = fb.mallocTyped(tc.i64(), fb.iconst(4));
        Value i = fb.var(tc.i64());
        fb.assign(i, fb.iconst(0));
        BlockId loop = fb.newBlock("loop");
        BlockId done = fb.newBlock("done");
        fb.jmp(loop);
        fb.setBlock(loop);
        fb.store(i, fb.elemPtr(arr, i)); // traps when i == 4
        fb.assign(i, fb.addImm(i, 1));
        fb.br(fb.slt(i, fb.iconst(100)), loop, done);
        fb.setBlock(done);
        fb.ret(fb.iconst(0));
    };
    expectEnginesAgree(build, true);
}

TEST(Superblock, DivisionByZeroAndAssertTraps)
{
    auto div_build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value z = fb.sub(fb.iconst(5), fb.iconst(5));
        fb.ret(fb.sdiv(fb.iconst(1), z));
    };
    expectEnginesAgree(div_build, false);

    auto trap_build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        BlockId bad = fb.newBlock("bad");
        BlockId good = fb.newBlock("good");
        fb.br(fb.eq(fb.iconst(1), fb.iconst(1)), bad, good);
        fb.setBlock(bad);
        fb.trap(42);
        fb.setBlock(good);
        fb.ret(fb.iconst(0));
    };
    expectEnginesAgree(trap_build, false);
}

// ---------------------------------------------------------------------
// Instruction budget
// ---------------------------------------------------------------------

TEST(Superblock, InstructionLimitExactAcrossEngines)
{
    // Sweep the budget across block boundaries, call barriers, and the
    // exact completion count: both engines must agree on whether the
    // run traps, on the trap message, and on the final instruction
    // counter (the superblock engine bails to the general path rather
    // than over- or under-charging).
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        {
            FunctionBuilder fb(m, "leaf", {tc.i64()}, tc.i64());
            fb.ret(fb.addImm(fb.arg(0), 1));
        }
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value buf = fb.mallocTyped(tc.i64(), fb.iconst(2));
        Value i = fb.var(tc.i64());
        fb.assign(i, fb.iconst(0));
        BlockId loop = fb.newBlock("loop");
        BlockId done = fb.newBlock("done");
        fb.jmp(loop);
        fb.setBlock(loop);
        fb.store(i, fb.elemPtr(buf, int64_t{0}));
        fb.assign(i, fb.call("leaf", {i}));
        fb.br(fb.slt(i, fb.iconst(40)), loop, done);
        fb.setBlock(done);
        fb.freePtr(buf);
        fb.ret(i);
    };

    EngineOptions unlimited;
    unlimited.superblocks = false;
    EngineRun full = runEngine(build, unlimited);
    ASSERT_FALSE(full.trapped);
    ASSERT_GT(full.instructions, 50u);

    const uint64_t interesting[] = {1,
                                    2,
                                    3,
                                    full.instructions / 3,
                                    full.instructions / 2,
                                    full.instructions - 2,
                                    full.instructions - 1,
                                    full.instructions,
                                    full.instructions + 1};
    for (uint64_t limit : interesting) {
        SCOPED_TRACE(limit);
        expectEnginesAgree(build, false, limit);
    }
}

// ---------------------------------------------------------------------
// Engine eligibility
// ---------------------------------------------------------------------

TEST(Superblock, TracerForcesGeneralPathWithIdenticalStats)
{
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value buf = fb.mallocTyped(tc.i64(), fb.iconst(2));
        fb.store(fb.iconst(11), buf);
        Value v = fb.load(buf);
        fb.freePtr(buf);
        fb.ret(v);
    };
    EngineOptions with_sb;
    EngineRun sb_run = runEngine(build, with_sb);

    // Superblocks configured on, but a trace sink forces the general
    // path for every activation; simulated results must not move.
    EngineOptions traced = with_sb;
    traced.attachTracer = true;
    EngineRun traced_run = runEngine(build, traced);

    EXPECT_EQ(sb_run.checksum, traced_run.checksum);
    EXPECT_EQ(sb_run.instructions, traced_run.instructions);
    EXPECT_EQ(sb_run.cycles, traced_run.cycles);
    // The traced run must not have predecoded anything.
    EXPECT_EQ(traced_run.stats.scalar("vm.superblock", "functions"),
              0u);
    EXPECT_GT(sb_run.stats.scalar("vm.superblock", "functions"), 0u);
}

// ---------------------------------------------------------------------
// Tiered execution (vm/tier.hh)
// ---------------------------------------------------------------------

namespace {

/** A hot self-loop plus a struct-access loop: exercises both the pure
 *  templates and the fused-memory templates of the tier-2 JIT. */
void
buildTierWorkload(Module &m)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    const Type *pair = m.types().createStruct("pair",
                                              {tc.i64(), tc.i64()});
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value arr = fb.mallocTyped(pair, fb.iconst(16));
    Value i = fb.var(tc.i64());
    Value sum = fb.var(tc.i64());
    fb.assign(i, fb.iconst(0));
    fb.assign(sum, fb.iconst(0));
    BlockId loop = fb.newBlock("loop");
    BlockId done = fb.newBlock("done");
    fb.jmp(loop);
    fb.setBlock(loop);
    Value p = fb.elemPtr(arr, fb.and_(i, fb.iconst(15)));
    fb.storeField(p, 0, i);
    fb.assign(sum, fb.add(sum, fb.loadField(p, 0)));
    fb.assign(i, fb.addImm(i, 1));
    fb.br(fb.slt(i, fb.iconst(2000)), loop, done);
    fb.setBlock(done);
    fb.freePtr(arr);
    fb.ret(sum);
}

} // namespace

TEST(Tier, PromotionIsDeterministic)
{
    // Two identical runs must promote the same blocks at the same
    // guest-cycle points: every vm.tier scalar (and every simulated
    // stat) must match exactly.
    EngineOptions opts;
    opts.instrument = true;
    opts.jitThreshold = 4;
    EngineRun a = runEngine(buildTierWorkload, opts);
    EngineRun b = runEngine(buildTierWorkload, opts);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    const StatSnapshot::Group *ta = a.stats.findGroup("vm.tier");
    const StatSnapshot::Group *tb = b.stats.findGroup("vm.tier");
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    EXPECT_EQ(ta->scalars, tb->scalars);
    if (a.stats.scalar("vm.tier", "jit_active") == 1) {
        EXPECT_GT(a.stats.scalar("vm.tier", "jit_promotions"), 0u);
        EXPECT_GT(a.stats.scalar("vm.tier", "jit_blocks"), 0u);
    }
}

TEST(Tier, TrapInsideJittedBlockBailsExactly)
{
    // The loop block is promoted long before the out-of-bounds
    // iteration; the jitted code must detect the trap predicate,
    // bail with no partial effects, and let the interpreter raise
    // the identical trap (message, kind, counters, forensics).
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value arr = fb.mallocTyped(tc.i64(), fb.iconst(64));
        Value i = fb.var(tc.i64());
        fb.assign(i, fb.iconst(0));
        BlockId loop = fb.newBlock("loop");
        BlockId done = fb.newBlock("done");
        fb.jmp(loop);
        fb.setBlock(loop);
        fb.store(i, fb.elemPtr(arr, i)); // traps when i == 64
        fb.assign(i, fb.addImm(i, 1));
        fb.br(fb.slt(i, fb.iconst(100)), loop, done);
        fb.setBlock(done);
        fb.ret(fb.iconst(0));
    };

    EngineOptions general;
    general.instrument = true;
    general.superblocks = false;
    general.forensics = true;
    EngineRun ref = runEngine(build, general);
    ASSERT_TRUE(ref.trapped);

    EngineOptions jit;
    jit.instrument = true;
    jit.jitThreshold = 2;
    jit.forensics = true;
    EngineRun got = runEngine(build, jit);
    EXPECT_TRUE(got.trapped);
    EXPECT_EQ(ref.trapWhat, got.trapWhat);
    EXPECT_EQ(ref.trapKind, got.trapKind);
    EXPECT_EQ(ref.instructions, got.instructions);
    EXPECT_EQ(ref.cycles, got.cycles);
    expectStatsEqual(ref.stats, got.stats);
    if (got.stats.scalar("vm.tier", "jit_active") == 1) {
        // The trap was discovered inside jitted code.
        EXPECT_GT(got.stats.scalar("vm.tier", "jit_promotions"), 0u);
        EXPECT_GT(got.stats.scalar("vm.tier", "jit_bailouts"), 0u);
    }
}

TEST(Tier, DeoptOnInvalidationRepromotes)
{
    // A native hook invalidates all tiered code mid-run (the layout-
    // table / code invalidation path): compiled units are dropped,
    // hot counters reset, and the still-hot loop block re-promotes —
    // with every simulated observable identical to the general path.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        m.declareNative("tier_poke", {}, tc.voidTy());
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value sum = fb.var(tc.i64());
        Value k = fb.var(tc.i64());
        fb.assign(sum, fb.iconst(0));
        fb.assign(k, fb.iconst(0));
        BlockId outer = fb.newBlock("outer");
        BlockId inner = fb.newBlock("inner");
        BlockId innerDone = fb.newBlock("inner_done");
        BlockId done = fb.newBlock("done");
        fb.jmp(outer);
        fb.setBlock(outer);
        Value i = fb.var(tc.i64());
        fb.assign(i, fb.iconst(0));
        fb.jmp(inner);
        fb.setBlock(inner);
        fb.assign(sum, fb.add(sum, fb.xor_(i, k)));
        fb.assign(i, fb.addImm(i, 1));
        fb.br(fb.slt(i, fb.iconst(200)), inner, innerDone);
        fb.setBlock(innerDone);
        fb.call("tier_poke", {});
        fb.assign(k, fb.addImm(k, 1));
        fb.br(fb.slt(k, fb.iconst(3)), outer, done);
        fb.setBlock(done);
        fb.ret(sum);
    };

    auto runWith = [&](bool superblocks, bool jit_on,
                       StatSnapshot *tier_out) {
        Module m;
        build(m);
        InstrumentResult inst = instrumentModule(m);
        verifyOrDie(m);
        VmConfig config;
        config.instrumented = true;
        config.superblocks = superblocks;
        config.jit = jit_on;
        config.jitThreshold = 2;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        machine.registerNative(
            "tier_poke",
            [](Machine &mm, const std::vector<uint64_t> &) {
                mm.invalidateTieredCode("test invalidation");
                return uint64_t{0};
            });
        EngineRun run;
        run.checksum = machine.run();
        run.instructions = machine.instructions();
        run.cycles = machine.cycles();
        machine.syncStats();
        if (tier_out)
            *tier_out = machine.statRegistry().snapshot();
        return run;
    };

    StatSnapshot tiered;
    EngineRun ref = runWith(false, false, nullptr);
    EngineRun got = runWith(true, true, &tiered);
    EXPECT_EQ(ref.checksum, got.checksum);
    EXPECT_EQ(ref.instructions, got.instructions);
    EXPECT_EQ(ref.cycles, got.cycles);
    if (tiered.scalar("vm.tier", "jit_active") == 1) {
        // Each poke drops the promoted inner-loop unit; the next
        // outer iteration re-promotes it.
        EXPECT_GE(tiered.scalar("vm.tier", "deopts"), 1u);
        EXPECT_GE(tiered.scalar("vm.tier", "jit_promotions"), 2u);
    }
}

TEST(Tier, DeoptWithLiveJittedCallFrames)
{
    // Invalidate all tiered code while a jitted callee is multiple
    // emitted frames deep (main -> mid -> leaf, every call made by an
    // emitted Call template). The arena must stay mapped until the
    // last live emitted frame exits; each frame is forced out through
    // the resume-general path (call_deopt_exits), the rest of each
    // activation replays on the general engine, the still-hot blocks
    // re-promote afterwards, and every simulated observable matches
    // the general interpreter exactly.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        m.declareNative("tier_poke", {}, tc.voidTy());
        {
            // leaf(t): hot spin so its blocks promote, then the poke
            // on the designated iteration — reached with the whole
            // call chain still inside emitted code.
            FunctionBuilder fb(m, "leaf", {tc.i64()}, tc.i64());
            Value s = fb.var(tc.i64());
            Value i = fb.var(tc.i64());
            fb.assign(s, fb.iconst(0));
            fb.assign(i, fb.iconst(0));
            BlockId spin = fb.newBlock("spin");
            BlockId check = fb.newBlock("check");
            BlockId poke = fb.newBlock("poke");
            BlockId out = fb.newBlock("out");
            fb.jmp(spin);
            fb.setBlock(spin);
            fb.assign(s, fb.add(s, i));
            fb.assign(i, fb.addImm(i, 1));
            fb.br(fb.slt(i, fb.iconst(60)), spin, check);
            fb.setBlock(check);
            fb.br(fb.ne(fb.arg(0), fb.iconst(0)), poke, out);
            fb.setBlock(poke);
            fb.call("tier_poke", {});
            fb.jmp(out);
            fb.setBlock(out);
            fb.ret(s);
        }
        {
            FunctionBuilder fb(m, "mid", {tc.i64()}, tc.i64());
            Value a = fb.call("leaf", {fb.arg(0)});
            fb.ret(fb.addImm(a, 1));
        }
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value acc = fb.var(tc.i64());
        Value k = fb.var(tc.i64());
        fb.assign(acc, fb.iconst(0));
        fb.assign(k, fb.iconst(0));
        BlockId loop = fb.newBlock("loop");
        BlockId done = fb.newBlock("done");
        fb.jmp(loop);
        fb.setBlock(loop);
        // t != 0 exactly once, on iteration 6 — long after threshold-2
        // promotion of every block in the chain.
        Value t = fb.eq(k, fb.iconst(6));
        fb.assign(acc, fb.add(acc, fb.call("mid", {t})));
        fb.assign(k, fb.addImm(k, 1));
        fb.br(fb.slt(k, fb.iconst(10)), loop, done);
        fb.setBlock(done);
        fb.ret(acc);
    };

    auto runWith = [&](bool superblocks, bool jit_on,
                       StatSnapshot *snap_out) {
        Module m;
        build(m);
        InstrumentResult inst = instrumentModule(m);
        verifyOrDie(m);
        VmConfig config;
        config.instrumented = true;
        config.superblocks = superblocks;
        config.jit = jit_on;
        config.jitThreshold = 2;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        machine.registerNative(
            "tier_poke",
            [](Machine &mm, const std::vector<uint64_t> &) {
                mm.invalidateTieredCode("test invalidation");
                return uint64_t{0};
            });
        EngineRun run;
        run.checksum = machine.run();
        run.instructions = machine.instructions();
        run.cycles = machine.cycles();
        machine.syncStats();
        if (snap_out)
            *snap_out = machine.statRegistry().snapshot();
        return run;
    };

    StatSnapshot general_snap, tiered_snap;
    EngineRun ref = runWith(false, false, &general_snap);
    EngineRun got = runWith(true, true, &tiered_snap);
    EXPECT_EQ(ref.checksum, got.checksum);
    EXPECT_EQ(ref.instructions, got.instructions);
    EXPECT_EQ(ref.cycles, got.cycles);
    expectStatsEqual(general_snap, tiered_snap);
    expectStatsEqual(tiered_snap, general_snap);
    if (tiered_snap.scalar("vm.tier", "jit_active") == 1) {
        // Calls really went through the emitted convention...
        EXPECT_GT(tiered_snap.scalar("vm.tier", "call_inlined"), 0u);
        EXPECT_GT(tiered_snap.scalar("vm.tier", "call_jit_rets"), 0u);
        // ...the poke deopted with emitted frames live, and every
        // live frame was forced out via the resume-general path
        // (leaf's and mid's callers at minimum)...
        EXPECT_GE(tiered_snap.scalar("vm.tier", "deopts"), 1u);
        EXPECT_GE(tiered_snap.scalar("vm.tier", "call_deopt_exits"),
                  2u);
        // ...and the still-hot chain re-promoted afterwards.
        EXPECT_GE(tiered_snap.scalar("vm.tier", "jit_promotions"),
                  2u);
    }
}

TEST(Tier, TemporalStaleTrapInsideJittedCallee)
{
    // A use-after-free whose stale promote + poisoned dereference
    // fire inside a jitted callee two emitted call frames deep
    // (main -> mid -> reader, all promoted by a warm phase while the
    // pointer was still live). The trap must unwind through the
    // emitted frames with the guest stack frozen mid-call, and the
    // forensics report must be bit-identical to the general engine's:
    // same symbolized stack, same allocation site, same free site,
    // same generation lock/key delta.
    auto build = [](Module &m) {
        declareLibc(m);
        TypeContext &tc = m.types();
        GlobalId slot = m.addGlobal("slot", tc.ptr(tc.i64()));
        {
            // reader: hot spin (promotes the function), then promote
            // + dereference of the pointer parked in the global.
            FunctionBuilder fb(m, "reader", {}, tc.i64());
            Value s = fb.var(tc.i64());
            Value i = fb.var(tc.i64());
            fb.assign(s, fb.iconst(0));
            fb.assign(i, fb.iconst(0));
            BlockId spin = fb.newBlock("spin");
            BlockId deref = fb.newBlock("deref");
            fb.jmp(spin);
            fb.setBlock(spin);
            fb.assign(s, fb.add(s, i));
            fb.assign(i, fb.addImm(i, 1));
            fb.br(fb.slt(i, fb.iconst(40)), spin, deref);
            fb.setBlock(deref);
            Value p = fb.load(fb.globalAddr(slot));
            fb.ret(fb.add(s, fb.load(fb.elemPtr(p, int64_t{0}))));
        }
        {
            FunctionBuilder fb(m, "mid", {}, tc.i64());
            fb.ret(fb.addImm(fb.call("reader", {}), 1));
        }
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value p = fb.mallocTyped(tc.i64(), fb.iconst(8));
        fb.store(fb.iconst(7), fb.elemPtr(p, int64_t{0}));
        fb.store(p, fb.globalAddr(slot));
        Value acc = fb.var(tc.i64());
        Value k = fb.var(tc.i64());
        fb.assign(acc, fb.iconst(0));
        fb.assign(k, fb.iconst(0));
        BlockId warm = fb.newBlock("warm");
        BlockId uaf = fb.newBlock("uaf");
        fb.jmp(warm);
        fb.setBlock(warm);
        fb.assign(acc, fb.add(acc, fb.call("mid", {})));
        fb.assign(k, fb.addImm(k, 1));
        fb.br(fb.slt(k, fb.iconst(12)), warm, uaf);
        fb.setBlock(uaf);
        fb.freePtr(p);
        // Recycle the slot so the stale key faces a bumped lock
        // (the classic undetectable-before-versioning shape).
        Value q = fb.mallocTyped(tc.i64(), fb.iconst(8));
        fb.store(fb.iconst(9), fb.elemPtr(q, int64_t{0}));
        fb.assign(acc, fb.add(acc, fb.call("mid", {})));
        fb.ret(acc);
    };

    EngineOptions general;
    general.instrument = true;
    general.superblocks = false;
    general.allocator = AllocatorKind::Subheap;
    general.forensics = true;
    EngineRun ref = runEngine(build, general);
    ASSERT_TRUE(ref.trapped);
    EXPECT_EQ(ref.trapKind, TrapKind::TemporalViolation)
        << ref.trapWhat;

    EngineOptions jit;
    jit.instrument = true;
    jit.allocator = AllocatorKind::Subheap;
    jit.forensics = true;
    jit.jitThreshold = 2;
    EngineRun got = runEngine(build, jit);
    ASSERT_TRUE(got.trapped);
    EXPECT_EQ(ref.trapWhat, got.trapWhat);
    EXPECT_EQ(ref.trapKind, got.trapKind);
    EXPECT_EQ(ref.instructions, got.instructions);
    EXPECT_EQ(ref.cycles, got.cycles);
    expectStatsEqual(ref.stats, got.stats);
    expectStatsEqual(got.stats, ref.stats);

    // The forensics reports must match field for field — the JSON
    // rendering covers every one of them (stack, pointer decode,
    // metadata decode, nearest object, temporal lock/key).
    ASSERT_NE(ref.report, nullptr);
    ASSERT_NE(got.report, nullptr);
    EXPECT_EQ(ref.report->json(), got.report->json());

    // Spot-check the fields the report contract names, on both.
    for (const auto *report : {ref.report.get(), got.report.get()}) {
        ASSERT_GE(report->stack.size(), 3u);
        EXPECT_EQ(report->stack.front().function, "main");
        EXPECT_EQ(report->stack.back().function, "reader");
        EXPECT_TRUE(report->temporalKnown);
        EXPECT_GE(report->generationDelta, 1u);
        EXPECT_NE(report->ptrGeneration, report->lockGeneration);
        EXPECT_TRUE(report->freeSiteKnown);
        EXPECT_EQ(report->freeFunction, "main");
        // Allocation site of the freed object.
        ASSERT_TRUE(report->object.present);
        ASSERT_TRUE(report->object.siteKnown);
        EXPECT_EQ(report->object.siteFunction, "main");
    }

    if (got.stats.scalar("vm.tier", "jit_active") == 1) {
        // The trap really crossed emitted call frames.
        EXPECT_GT(got.stats.scalar("vm.tier", "call_inlined"), 0u);
        EXPECT_GE(got.stats.scalar("vm.tier", "call_trap_unwinds"),
                  1u);
    }
}

// ---------------------------------------------------------------------
// GuestMemory unmap / micro-TLB
// ---------------------------------------------------------------------

TEST(GuestMemoryUnmap, InvalidatesMicroTlb)
{
    GuestMemory mem;
    GuestAddr addr = 0x10000000;
    mem.store<uint64_t>(addr, 0xdeadbeefULL);
    // Warm the micro-TLB on the page.
    EXPECT_EQ(mem.load<uint64_t>(addr), 0xdeadbeefULL);

    mem.unmap(addr, GuestMemory::pageSize);
    // A stale micro-TLB hit would return the old host buffer's
    // contents; the re-materialized page must read back zero-filled.
    EXPECT_EQ(mem.load<uint64_t>(addr), 0u);

    mem.store<uint64_t>(addr, 0x1234ULL);
    EXPECT_EQ(mem.load<uint64_t>(addr), 0x1234ULL);
}

TEST(GuestMemoryUnmap, PartialPagesAreNotReleased)
{
    GuestMemory mem;
    GuestAddr addr = 0x20000000;
    mem.store<uint64_t>(addr, 77);
    // Range smaller than a page (and not page-aligned at both ends):
    // no full page is covered, nothing is released.
    mem.unmap(addr + 8, 100);
    EXPECT_EQ(mem.load<uint64_t>(addr), 77u);
}

TEST(GuestMemoryUnmap, ResidentPeakSurvivesUnmap)
{
    GuestMemory mem;
    for (int i = 0; i < 4; ++i)
        mem.store<uint8_t>(0x30000000 + i * GuestMemory::pageSize, 1);
    uint64_t peak = mem.residentBytes();
    EXPECT_EQ(peak, 4 * GuestMemory::pageSize);
    mem.unmap(0x30000000, 2 * GuestMemory::pageSize);
    EXPECT_EQ(mem.pagesMapped(), 2u);
    // Figure 12 models max resident size; releasing pages later must
    // not rewrite history.
    EXPECT_EQ(mem.residentBytes(), peak);
}

} // namespace
} // namespace infat
