/**
 * @file
 * End-to-end smoke tests: build a module, instrument it, run it under
 * every allocator configuration, and check both functional results and
 * spatial-violation detection.
 */

#include <gtest/gtest.h>

#include "compiler/instrument.hh"
#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "vm/libc_model.hh"
#include "vm/machine.hh"

namespace infat {
namespace {

using namespace ir;

/** treeadd in miniature: build a binary tree, sum it recursively. */
void
buildTreeModule(Module &m, int depth)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    StructType *node = tc.createStruct("Node");
    node->setBody({tc.i64(), tc.ptr(node), tc.ptr(node)});

    {
        FunctionBuilder fb(m, "build", {tc.i64()}, tc.ptr(node));
        Value d = fb.arg(0);
        BlockId leaf = fb.newBlock("leaf");
        BlockId rec = fb.newBlock("rec");
        fb.br(fb.sle(d, fb.iconst(0)), leaf, rec);
        fb.setBlock(leaf);
        fb.ret(fb.nullPtr(node));
        fb.setBlock(rec);
        Value n = fb.mallocTyped(node);
        fb.storeField(n, 0, d);
        Value dm1 = fb.addImm(d, -1);
        fb.storeField(n, 1, fb.call("build", {dm1}));
        fb.storeField(n, 2, fb.call("build", {dm1}));
        fb.ret(n);
    }
    {
        FunctionBuilder fb(m, "sum", {tc.ptr(node)}, tc.i64());
        Value n = fb.arg(0);
        BlockId zero = fb.newBlock("zero");
        BlockId body = fb.newBlock("body");
        fb.br(fb.eq(n, fb.iconst(0)), zero, body);
        fb.setBlock(zero);
        fb.ret(fb.iconst(0));
        fb.setBlock(body);
        Value v = fb.loadField(n, 0);
        Value l = fb.call("sum", {fb.loadField(n, 1)});
        Value r = fb.call("sum", {fb.loadField(n, 2)});
        fb.ret(fb.add(v, fb.add(l, r)));
    }
    {
        FunctionBuilder fb(m, "main", {}, tc.i64());
        Value root = fb.call("build", {fb.iconst(depth)});
        fb.ret(fb.call("sum", {root}));
    }
}

int64_t
expectedTreeSum(int depth)
{
    // Each node at remaining-depth d contributes d; level k (root k=0)
    // has 2^k nodes with value depth-k.
    int64_t total = 0;
    for (int k = 0; k < depth; ++k)
        total += (int64_t{1} << k) * (depth - k);
    return total;
}

TEST(VmSmoke, TreeBaseline)
{
    Module m;
    buildTreeModule(m, 8);
    verifyOrDie(m);
    Machine machine(m, nullptr, {});
    installLibc(machine);
    EXPECT_EQ(machine.run(), static_cast<uint64_t>(expectedTreeSum(8)));
    EXPECT_GT(machine.instructions(), 0u);
}

class VmSmokeAllocators
    : public ::testing::TestWithParam<AllocatorKind>
{
};

TEST_P(VmSmokeAllocators, TreeInstrumented)
{
    Module m;
    buildTreeModule(m, 8);
    InstrumentResult inst = instrumentModule(m);
    verifyOrDie(m);

    VmConfig config;
    config.instrumented = true;
    config.allocator = GetParam();
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    EXPECT_EQ(machine.run(), static_cast<uint64_t>(expectedTreeSum(8)));

    // Pointers loaded from memory must have been promoted, and the
    // tree nodes are heap objects with metadata.
    EXPECT_GT(machine.promoteEngine().stats().value("promotes"), 0u);
    EXPECT_GT(machine.stats().value("heap_objects"), 0u);
    // Leaf children are NULL: the bypass path must have been taken.
    EXPECT_GT(machine.promoteEngine().stats().value("bypass_null"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Allocators, VmSmokeAllocators,
                         ::testing::Values(AllocatorKind::Wrapped,
                                           AllocatorKind::Subheap));

/** A heap overflow that In-Fat Pointer must catch and baseline won't. */
void
buildOverflowModule(Module &m, int64_t store_index)
{
    declareLibc(m);
    TypeContext &tc = m.types();
    FunctionBuilder fb(m, "main", {}, tc.i64());
    Value buf = fb.mallocTyped(tc.i64(), fb.iconst(8));
    Value idx = fb.iconst(store_index);
    fb.store(fb.iconst(42), fb.elemPtr(buf, idx));
    Value back = fb.load(fb.elemPtr(buf, fb.iconst(0))); // keep buf live
    fb.freePtr(buf);
    fb.ret(back);
}

TEST(VmSmoke, HeapOverflowDetected)
{
    for (AllocatorKind kind :
         {AllocatorKind::Wrapped, AllocatorKind::Subheap}) {
        Module m;
        buildOverflowModule(m, 8); // one past the end
        InstrumentResult inst = instrumentModule(m);
        VmConfig config;
        config.instrumented = true;
        config.allocator = kind;
        Machine machine(m, &inst.layouts, config);
        installLibc(machine);
        try {
            machine.run();
            FAIL() << "overflow not detected with "
                   << toString(kind);
        } catch (const GuestTrap &trap) {
            EXPECT_TRUE(trap.isSpatialViolation()) << trap.what();
        }
    }
}

TEST(VmSmoke, InBoundsAccessPasses)
{
    Module m;
    buildOverflowModule(m, 7); // last valid element
    InstrumentResult inst = instrumentModule(m);
    VmConfig config;
    config.instrumented = true;
    Machine machine(m, &inst.layouts, config);
    installLibc(machine);
    EXPECT_NO_THROW(machine.run());
}

TEST(VmSmoke, BaselineMissesOverflow)
{
    Module m;
    buildOverflowModule(m, 8);
    Machine machine(m, nullptr, {});
    installLibc(machine);
    EXPECT_NO_THROW(machine.run());
}

} // namespace
} // namespace infat
